//! Duplicate-message suppression (paper §4.1: "each node keeps a list of
//! recent messages" so a query received through a second path is
//! discarded).
//!
//! Semantically this is a bounded FIFO set: O(1) membership + insertion,
//! oldest entries forgotten first. The bound matters — an unbounded set
//! grows with every query in the run, and real Gnutella clients keep a
//! bounded table; the capacity-sensitivity ablation in `ddr-bench`
//! measures how small the bound can go before duplicate floods reappear.
//!
//! # Representation
//!
//! The cache is one open-addressing table of `(id, insertion index)`
//! pairs with linear probing. FIFO eviction is *implicit*: an entry is
//! live iff its insertion index lies within the last `capacity`
//! successful insertions, so the membership probe and the insert are a
//! single table walk — no companion FIFO ring and no second hash lookup
//! to delete the evicted id. This halves the random memory traffic per
//! query on the simulator hot path (each node owns a multi-KiB table, so
//! with hundreds of nodes every probe is effectively a cache miss; see
//! `EXPERIMENTS.md`).
//!
//! Stale (logically evicted) entries are left in place and reclaimed by
//! an amortised compaction pass that rebuilds the table from its live
//! entries whenever the occupied-slot count crosses a threshold, keeping
//! probe chains short and guaranteeing empty slots exist so unsuccessful
//! probes terminate. [`DupCache::clear`] is O(1): it raises a watermark
//! below which every entry counts as stale.
//!
//! The behaviour is bit-for-bit identical to the straightforward
//! hash-set-plus-ring formulation; `model_differential` below checks the
//! two against each other over randomized operation streams.

use ddr_sim::QueryId;

/// Sentinel insertion index marking a never-used slot. Real indices are
/// assigned from a counter starting at zero, so `u64::MAX` is
/// unreachable in any conceivable run.
const EMPTY_K: u64 = u64::MAX;

/// One table slot: a remembered id plus the (global, monotone) insertion
/// index it was last successfully inserted at.
#[derive(Debug, Clone, Copy)]
struct Slot {
    id: QueryId,
    k: u64,
}

const EMPTY_SLOT: Slot = Slot {
    id: QueryId(0),
    k: EMPTY_K,
};

/// Power-of-two table length for `live` current entries under a FIFO
/// bound of `capacity`: at least 4× the live count (load factor ≤ 1/4
/// right after a rebuild, so linear-probe chains stay short), capped at
/// the most the bound can ever need (`2 * capacity`, load factor 1/2).
fn table_len_for(live: usize, capacity: usize) -> usize {
    let full = (capacity * 2).next_power_of_two().max(8);
    (live * 4).next_power_of_two().clamp(8, full)
}

/// Compaction threshold for a table of `len` slots: 3/4 occupancy, and
/// always strictly below `len` so empty slots exist and unsuccessful
/// probes terminate.
fn max_occupied_for(len: usize) -> usize {
    len - (len / 4).max(1)
}

/// A bounded set of recently seen query ids.
///
/// ```
/// use ddr_core::DupCache;
/// use ddr_sim::QueryId;
///
/// let mut seen = DupCache::new(128);
/// assert!(seen.first_sighting(QueryId(7)), "first copy: process it");
/// assert!(!seen.first_sighting(QueryId(7)), "second copy: discard");
/// ```
#[derive(Debug, Clone)]
pub struct DupCache {
    slots: Box<[Slot]>,
    /// `slots.len() - 1` (the length is a power of two).
    mask: u64,
    /// Multiply-shift hash: take the top `log2(len)` bits.
    shift: u32,
    /// Semantic FIFO bound.
    capacity: u64,
    /// Total successful insertions ever (the next insertion index).
    inserts: u64,
    /// Entries with `k < floor` are stale regardless of age; raised by
    /// [`DupCache::clear`] so clearing is O(1).
    floor: u64,
    /// Non-empty slots (live + stale); compaction trigger.
    occupied: usize,
    /// Compaction threshold; always `< slots.len()` so at least one
    /// empty slot exists and unsuccessful probes terminate.
    max_occupied: usize,
}

impl DupCache {
    /// A cache remembering up to `capacity` recent ids.
    ///
    /// The table starts small and grows with the node's *actual* working
    /// set, not the configured bound: real workloads configure a generous
    /// capacity (thousands) while most nodes see only hundreds of
    /// distinct queries per session, and sizing every node's table for
    /// the worst case multiplies the simulator's cache-hostile footprint
    /// for nothing. Growth happens inside [`DupCache::compact`] when the
    /// live count crosses half the table.
    ///
    /// # Panics
    /// Panics when `capacity == 0` — a zero-size cache silently degrades
    /// to "forward every duplicate", which is never intended.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "DupCache capacity must be positive");
        // Small initial table, but never beyond what the bound needs:
        // live entries can't exceed `capacity`, so `2 * capacity` slots
        // (load factor 1/2) is the largest table ever required.
        let len = table_len_for(capacity.min(8), capacity);
        DupCache {
            slots: vec![EMPTY_SLOT; len].into_boxed_slice(),
            mask: (len - 1) as u64,
            shift: 64 - len.trailing_zeros(),
            capacity: capacity as u64,
            inserts: 0,
            floor: 0,
            occupied: 0,
            max_occupied: max_occupied_for(len),
        }
    }

    /// Home slot for an id. Ids are assigned sequentially by the query
    /// workload, so a multiply-shift (Fibonacci) hash — which spreads
    /// consecutive integers maximally — beats masking low bits directly.
    #[inline]
    fn home(&self, id: QueryId) -> u64 {
        id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift
    }

    /// Smallest insertion index still considered live.
    #[inline]
    fn live_min(&self) -> u64 {
        self.inserts.saturating_sub(self.capacity).max(self.floor)
    }

    /// Record `id`; returns `true` if it was **new** (process the message)
    /// and `false` if it is a duplicate (discard).
    pub fn first_sighting(&mut self, id: QueryId) -> bool {
        let live_min = self.live_min();
        let mut j = self.home(id);
        loop {
            let s = self.slots[j as usize];
            if s.k == EMPTY_K {
                // Absent: claim the first free slot on the chain.
                self.slots[j as usize] = Slot {
                    id,
                    k: self.inserts,
                };
                self.inserts += 1;
                self.occupied += 1;
                if self.occupied >= self.max_occupied {
                    self.compact();
                }
                return true;
            }
            if s.id == id {
                if s.k >= live_min {
                    return false; // still remembered: duplicate
                }
                // Evicted long ago; re-insert in place (the id occurs at
                // most once in the table, so updating the index here
                // preserves the single-slot-per-id invariant).
                self.slots[j as usize].k = self.inserts;
                self.inserts += 1;
                return true;
            }
            j = j.wrapping_add(1) & self.mask;
        }
    }

    /// Rebuild the table from its live entries, dropping stale ones and
    /// growing the table when the live set genuinely needs more room
    /// (never beyond the `2 * capacity` the FIFO bound can fill). Runs
    /// every Θ(len) insertions at worst, and the rebuild is two
    /// sequential sweeps — amortised O(1) per insertion and far cheaper
    /// per element than the random probes it prevents.
    #[cold]
    fn compact(&mut self) {
        let live_min = self.live_min();
        let live = self
            .slots
            .iter()
            .filter(|s| s.k != EMPTY_K && s.k >= live_min)
            .count();
        let len = table_len_for(live, self.capacity as usize).max(self.slots.len());
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; len].into_boxed_slice());
        self.mask = (len - 1) as u64;
        self.shift = 64 - len.trailing_zeros();
        self.max_occupied = max_occupied_for(len);
        self.occupied = 0;
        for s in old.iter() {
            if s.k == EMPTY_K || s.k < live_min {
                continue;
            }
            let mut j = self.home(s.id);
            while self.slots[j as usize].k != EMPTY_K {
                j = j.wrapping_add(1) & self.mask;
            }
            self.slots[j as usize] = *s;
            self.occupied += 1;
        }
        debug_assert!(self.occupied < self.max_occupied);
    }

    /// Address of the table slot a probe for `id` starts at, for
    /// software prefetching by event-loop drivers (the slot is a pure
    /// hash of the id, known as soon as the message is, well before the
    /// membership check runs).
    #[inline]
    pub fn probe_addr(&self, id: QueryId) -> *const u8 {
        let j = self.home(id);
        std::ptr::addr_of!(self.slots[j as usize]) as *const u8
    }

    /// Whether `id` is currently remembered (no mutation).
    pub fn contains(&self, id: QueryId) -> bool {
        let live_min = self.live_min();
        let mut j = self.home(id);
        loop {
            let s = self.slots[j as usize];
            if s.k == EMPTY_K {
                return false;
            }
            if s.id == id {
                return s.k >= live_min;
            }
            j = j.wrapping_add(1) & self.mask;
        }
    }

    /// Number of remembered ids.
    ///
    /// Every live insertion index belongs to exactly one slot (ids are
    /// unique per slot and re-insertions only overwrite stale indices),
    /// so the live count is just the window width.
    pub fn len(&self) -> usize {
        (self.inserts - self.floor).min(self.capacity) as usize
    }

    /// Whether nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Forget everything (log-off/log-in cycles start fresh). O(1): the
    /// table is not touched, entries below the watermark are simply
    /// treated as stale and reclaimed by the next compaction.
    pub fn clear(&mut self) {
        self.floor = self.inserts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddr_sim::FastHashSet;
    use std::collections::VecDeque;

    /// The straightforward formulation the open-addressing cache must
    /// match bit-for-bit: a hash set plus a FIFO ring of remembered ids.
    struct ModelCache {
        seen: FastHashSet<QueryId>,
        order: VecDeque<QueryId>,
        capacity: usize,
    }

    impl ModelCache {
        fn new(capacity: usize) -> Self {
            ModelCache {
                seen: ddr_sim::hash::fast_set(),
                order: VecDeque::new(),
                capacity,
            }
        }

        fn first_sighting(&mut self, id: QueryId) -> bool {
            if !self.seen.insert(id) {
                return false;
            }
            if self.order.len() == self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.seen.remove(&old);
                }
            }
            self.order.push_back(id);
            true
        }

        fn contains(&self, id: QueryId) -> bool {
            self.seen.contains(&id)
        }

        fn clear(&mut self) {
            self.seen.clear();
            self.order.clear();
        }
    }

    #[test]
    fn first_then_duplicate() {
        let mut c = DupCache::new(8);
        assert!(c.first_sighting(QueryId(1)));
        assert!(!c.first_sighting(QueryId(1)));
        assert!(c.contains(QueryId(1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut c = DupCache::new(3);
        for i in 1..=3 {
            assert!(c.first_sighting(QueryId(i)));
        }
        assert!(c.first_sighting(QueryId(4))); // evicts 1
        assert!(!c.contains(QueryId(1)));
        assert!(c.contains(QueryId(2)));
        assert!(c.first_sighting(QueryId(1)), "forgotten id is new again");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn duplicates_do_not_consume_capacity() {
        let mut c = DupCache::new(2);
        c.first_sighting(QueryId(1));
        for _ in 0..10 {
            assert!(!c.first_sighting(QueryId(1)));
        }
        c.first_sighting(QueryId(2));
        // 1 must still be remembered: duplicates didn't push it out
        assert!(c.contains(QueryId(1)));
    }

    #[test]
    fn clear_forgets_all() {
        let mut c = DupCache::new(4);
        c.first_sighting(QueryId(1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.first_sighting(QueryId(1)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DupCache::new(0);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = DupCache::new(1);
        for i in 0..100 {
            assert!(c.first_sighting(QueryId(i)));
            assert!(!c.first_sighting(QueryId(i)));
            assert_eq!(c.len(), 1);
            if i > 0 {
                assert!(!c.contains(QueryId(i - 1)));
            }
        }
    }

    #[test]
    fn compaction_preserves_live_entries() {
        // Capacity 4 → 8 slots, compaction threshold 6. Streaming far
        // more distinct ids than slots forces many rebuilds; the last
        // `capacity` ids must always be remembered, everything older
        // forgotten.
        let mut c = DupCache::new(4);
        for i in 0..10_000u64 {
            assert!(c.first_sighting(QueryId(i)), "id {i} seen twice");
            for j in i.saturating_sub(3)..=i {
                assert!(c.contains(QueryId(j)), "live id {j} lost at {i}");
            }
            if i >= 4 {
                assert!(!c.contains(QueryId(i - 4)), "stale id kept at {i}");
            }
        }
    }

    /// Randomized differential test against the hash-set-plus-ring
    /// model: mixed first_sighting / contains / clear streams with ids
    /// drawn from a small universe (high collision + revival pressure).
    #[test]
    fn model_differential() {
        // SplitMix64: tiny deterministic generator for the op stream.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for capacity in [1usize, 2, 3, 7, 16, 61] {
            let mut fast = DupCache::new(capacity);
            let mut model = ModelCache::new(capacity);
            let universe = (capacity as u64) * 3 + 5;
            for step in 0..50_000u32 {
                let r = next();
                let id = QueryId(r % universe);
                match (r >> 40) % 16 {
                    0..=11 => {
                        assert_eq!(
                            fast.first_sighting(id),
                            model.first_sighting(id),
                            "first_sighting({id:?}) diverged at step {step} (capacity {capacity})"
                        );
                    }
                    12..=14 => {
                        assert_eq!(
                            fast.contains(id),
                            model.contains(id),
                            "contains({id:?}) diverged at step {step} (capacity {capacity})"
                        );
                    }
                    _ => {
                        fast.clear();
                        model.clear();
                        assert!(fast.is_empty());
                    }
                }
                assert_eq!(fast.len(), model.order.len(), "len diverged at step {step}");
            }
        }
    }
}
