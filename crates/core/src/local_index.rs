//! Local indices (Yang & Garcia-Molina technique (iii), paper §2): "each
//! node maintains an index over the data of all peers within r hops of
//! itself, allowing each search to terminate after fewer hops".
//!
//! The index maps items to the nearby nodes holding them. A node holding a
//! radius-`r` index can answer "who within r hops has item X?" locally, so
//! a query only needs to be *forwarded* when the index misses.

use ddr_overlay::{bfs_within, Topology};
use ddr_sim::{FastHashMap, ItemId, NodeId};

/// A radius-bounded content index for one node.
#[derive(Debug, Clone)]
pub struct LocalIndex {
    owner: NodeId,
    radius: usize,
    /// item → nodes within `radius` hops that hold it (owner excluded).
    entries: FastHashMap<ItemId, Vec<NodeId>>,
    indexed_nodes: usize,
}

impl LocalIndex {
    /// Build the index for `owner` from the current topology, reading each
    /// nearby node's content through `items_of`.
    ///
    /// Rebuilding is the maintenance model: the paper's technique keeps
    /// indices fresh via update floods; in a simulator the equivalent is
    /// re-deriving from ground truth at reconfiguration points, which
    /// over-approximates freshness but preserves the hop-saving behaviour
    /// being measured.
    pub fn build<'a, F, I>(owner: NodeId, topology: &Topology, radius: usize, items_of: F) -> Self
    where
        F: Fn(NodeId) -> I,
        I: IntoIterator<Item = &'a ItemId>,
    {
        let mut entries: FastHashMap<ItemId, Vec<NodeId>> = ddr_sim::hash::fast_map();
        let nearby = bfs_within(topology, owner, radius);
        for &(node, _hops) in &nearby {
            for &item in items_of(node) {
                entries.entry(item).or_default().push(node);
            }
        }
        LocalIndex {
            owner,
            radius,
            entries,
            indexed_nodes: nearby.len(),
        }
    }

    /// Like [`Self::build`], but reading adjacency through a closure
    /// instead of a global [`Topology`] — for worlds where each node owns
    /// its own neighbor view (the sharded Gnutella world).
    pub fn build_from<'a, 'b, N, F, I>(
        owner: NodeId,
        neighbors_of: N,
        radius: usize,
        items_of: F,
    ) -> Self
    where
        N: Fn(NodeId) -> &'b [NodeId],
        F: Fn(NodeId) -> I,
        I: IntoIterator<Item = &'a ItemId>,
    {
        let mut entries: FastHashMap<ItemId, Vec<NodeId>> = ddr_sim::hash::fast_map();
        // Plain BFS to `radius` hops, owner excluded (mirrors
        // `ddr_overlay::bfs_within`).
        let mut visited: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        visited.insert(owner);
        let mut frontier = vec![owner];
        let mut nearby: Vec<NodeId> = Vec::new();
        for _ in 0..radius {
            let mut next = Vec::new();
            for &n in &frontier {
                for &m in neighbors_of(n) {
                    if visited.insert(m) {
                        nearby.push(m);
                        next.push(m);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        for &node in &nearby {
            for &item in items_of(node) {
                entries.entry(item).or_default().push(node);
            }
        }
        LocalIndex {
            owner,
            radius,
            entries,
            indexed_nodes: nearby.len(),
        }
    }

    /// The index owner.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The index radius in hops.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of nodes covered.
    pub fn indexed_nodes(&self) -> usize {
        self.indexed_nodes
    }

    /// Number of distinct items indexed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Nearby holders of `item` (empty slice when unknown).
    pub fn holders(&self, item: ItemId) -> &[NodeId] {
        self.entries.get(&item).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddr_overlay::RelationKind;

    /// items_of backed by a vector of per-node item lists.
    fn content(n: usize) -> Vec<Vec<ItemId>> {
        (0..n).map(|i| vec![ItemId(i as u32 * 10)]).collect()
    }

    fn chain(n: usize) -> Topology {
        let mut t = Topology::new(n, RelationKind::Asymmetric, 2, 2);
        for i in 0..n - 1 {
            t.add_edge(NodeId(i as u32), NodeId(i as u32 + 1)).unwrap();
        }
        t
    }

    #[test]
    fn indexes_items_within_radius_only() {
        let t = chain(5);
        let c = content(5);
        let idx = LocalIndex::build(NodeId(0), &t, 2, |n| c[n.index()].iter());
        assert_eq!(idx.indexed_nodes(), 2);
        // node1 (item 10) and node2 (item 20) covered; node3 (30) not
        assert_eq!(idx.holders(ItemId(10)), &[NodeId(1)]);
        assert_eq!(idx.holders(ItemId(20)), &[NodeId(2)]);
        assert!(idx.holders(ItemId(30)).is_empty());
        // the owner's own items are not in the index
        assert!(idx.holders(ItemId(0)).is_empty());
    }

    #[test]
    fn multiple_holders_listed() {
        let mut t = Topology::symmetric(3, 4);
        t.link_symmetric(NodeId(0), NodeId(1)).unwrap();
        t.link_symmetric(NodeId(0), NodeId(2)).unwrap();
        let shared = [vec![], vec![ItemId(7)], vec![ItemId(7)]];
        let idx = LocalIndex::build(NodeId(0), &t, 1, |n| shared[n.index()].iter());
        let mut holders = idx.holders(ItemId(7)).to_vec();
        holders.sort();
        assert_eq!(holders, vec![NodeId(1), NodeId(2)]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn zero_radius_index_is_empty() {
        let t = chain(3);
        let c = content(3);
        let idx = LocalIndex::build(NodeId(0), &t, 0, |n| c[n.index()].iter());
        assert!(idx.is_empty());
        assert_eq!(idx.indexed_nodes(), 0);
    }
}
