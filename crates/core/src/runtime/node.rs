//! Per-node framework bundle.
//!
//! Each case-study world composes its domain state (caches, pending
//! queries, workload generators) with one [`NodeRuntime`] holding the
//! framework-side machinery the paper gives every node:
//!
//! * the statistics store over encountered nodes (§3.2/§3.4),
//! * an optional exploration planner (§3.3 — the music case study has
//!   none: "there is no need for a separate exploration step"),
//! * an optional duplicate cache (§4.1 — point-to-point protocols like
//!   the web-cache study never see duplicate deliveries),
//! * the threshold-K reconfiguration clock (§4.3).

use crate::dup_cache::DupCache;
use crate::explore::{ExplorationPlanner, ExplorationTrigger};
use crate::stats_store::StatsStore;

use super::reconfig::ReconfigClock;

/// The framework-side state of one node, composed into each case
/// study's per-node struct. Fields are public: the runtime is plumbing,
/// not policy, and the worlds drive it directly.
#[derive(Debug, Clone)]
pub struct NodeRuntime {
    /// Statistics about neighbouring and encountered nodes.
    pub stats: StatsStore,
    /// Recently seen query ids (`None` when the protocol cannot deliver
    /// duplicates).
    pub seen: Option<DupCache>,
    /// Exploration trigger state (`None` when search doubles as
    /// exploration).
    pub explorer: Option<ExplorationPlanner>,
    /// Requests-since-last-update clock (threshold K).
    pub clock: ReconfigClock,
}

impl NodeRuntime {
    /// A bare runtime: stats + clock, no dup cache, no explorer.
    pub fn new(threshold: u32) -> Self {
        NodeRuntime {
            stats: StatsStore::new(),
            seen: None,
            explorer: None,
            clock: ReconfigClock::new(threshold),
        }
    }

    /// Attach a duplicate cache of the given capacity.
    pub fn with_dup_cache(mut self, capacity: usize) -> Self {
        self.seen = Some(DupCache::new(capacity));
        self
    }

    /// Attach an exploration planner with the given trigger.
    pub fn with_explorer(mut self, trigger: ExplorationTrigger) -> Self {
        self.explorer = Some(ExplorationPlanner::new(trigger));
        self
    }

    /// The duplicate cache.
    ///
    /// # Panics
    /// Panics when the runtime was built without one — that is a wiring
    /// bug in the world, not a runtime condition.
    #[inline]
    pub fn seen(&mut self) -> &mut DupCache {
        self.seen
            .as_mut()
            .expect("NodeRuntime built without dup cache")
    }

    /// The exploration planner.
    ///
    /// # Panics
    /// Panics when the runtime was built without one.
    #[inline]
    pub fn explorer(&mut self) -> &mut ExplorationPlanner {
        self.explorer
            .as_mut()
            .expect("NodeRuntime built without explorer")
    }

    /// Session start (login / restart): forget seen messages and restart
    /// the reconfiguration clock. Statistics survive or not per world
    /// policy — call [`NodeRuntime::reset_stats`] separately when they
    /// should not.
    pub fn begin_session(&mut self) {
        if let Some(seen) = &mut self.seen {
            seen.clear();
        }
        self.clock.reset();
    }

    /// Drop all collected node statistics (cold restart).
    pub fn reset_stats(&mut self) {
        self.stats = StatsStore::new();
    }

    /// Invitation-accepted damping: the neighbour list just changed, so
    /// restart the update clock (§4.3).
    #[inline]
    pub fn note_invitation_accepted(&mut self) {
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddr_sim::QueryId;

    #[test]
    fn builder_attaches_optional_parts() {
        let bare = NodeRuntime::new(4);
        assert!(bare.seen.is_none());
        assert!(bare.explorer.is_none());
        assert_eq!(bare.clock.threshold(), 4);

        let full = NodeRuntime::new(4)
            .with_dup_cache(8)
            .with_explorer(ExplorationTrigger::EveryNRequests(2));
        assert!(full.seen.is_some());
        assert!(full.explorer.is_some());
    }

    #[test]
    fn begin_session_clears_seen_and_clock() {
        let mut rt = NodeRuntime::new(2).with_dup_cache(8);
        assert!(rt.seen().first_sighting(QueryId(1)));
        assert!(!rt.clock.tick());
        rt.begin_session();
        assert!(rt.seen().first_sighting(QueryId(1)), "cache was cleared");
        assert_eq!(rt.clock.count(), 0);
    }

    #[test]
    fn invitation_damping_resets_clock() {
        let mut rt = NodeRuntime::new(2);
        rt.clock.tick();
        rt.note_invitation_accepted();
        assert_eq!(rt.clock.count(), 0);
    }

    #[test]
    #[should_panic(expected = "without dup cache")]
    fn seen_accessor_panics_when_absent() {
        let mut rt = NodeRuntime::new(1);
        rt.seen();
    }
}
