//! Online-membership set shared by all case studies.
//!
//! Every simulated network needs to answer three questions cheaply:
//! *is node `v` online?* (every forward decision), *how many nodes are
//! online?* (normalisations), and *give me a uniformly random online
//! node* (bootstrap joins, random invitations). [`Membership`] answers
//! all three in O(1) by pairing a dense list with a positional index,
//! using the classic swap-remove trick.
//!
//! The dense list's order is arbitrary but **deterministic** — it depends
//! only on the sequence of `add`/`remove` calls — which is what makes
//! "sample an index into [`Membership::as_slice`]" reproducible across
//! runs with the same seed.

use ddr_sim::NodeId;

/// O(1) add / remove / contains set over a fixed universe of `n` nodes,
/// exposing a dense slice for random sampling.
#[derive(Debug, Clone)]
pub struct Membership {
    list: Vec<NodeId>,
    /// pos[node] = index in `list` + 1; 0 = absent.
    pos: Vec<u32>,
}

impl Membership {
    /// An empty set over the universe `0..n` (everyone offline).
    pub fn new(n: usize) -> Self {
        Membership {
            list: Vec::with_capacity(n),
            pos: vec![0; n],
        }
    }

    /// A full set over the universe `0..n` (everyone online) — the
    /// steady-state starting point of the webcache / OLAP case studies.
    pub fn all_online(n: usize) -> Self {
        Membership {
            list: (0..n).map(|i| NodeId(i as u32)).collect(),
            pos: (1..=n as u32).collect(),
        }
    }

    /// Bring `node` online. Returns `true` if it was previously offline.
    pub fn add(&mut self, node: NodeId) -> bool {
        if self.pos[node.index()] != 0 {
            return false;
        }
        self.list.push(node);
        self.pos[node.index()] = self.list.len() as u32;
        true
    }

    /// Take `node` offline. Returns `true` if it was previously online.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let p = self.pos[node.index()];
        if p == 0 {
            return false;
        }
        let idx = (p - 1) as usize;
        let last = *self.list.last().expect("non-empty when pos set");
        self.list.swap_remove(idx);
        self.pos[node.index()] = 0;
        if last != node {
            self.pos[last.index()] = p;
        }
        true
    }

    /// Churn toggle: force `node` to the given state. Returns `true` if
    /// the state changed.
    pub fn set(&mut self, node: NodeId, online: bool) -> bool {
        if online {
            self.add(node)
        } else {
            self.remove(node)
        }
    }

    /// Whether `node` is online.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.pos[node.index()] != 0
    }

    /// Number of online nodes.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether nobody is online.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Size of the fixed universe (`n` at construction).
    pub fn universe(&self) -> usize {
        self.pos.len()
    }

    /// Dense slice of online nodes (arbitrary but deterministic order;
    /// index it with a bounded random draw for uniform sampling).
    pub fn as_slice(&self) -> &[NodeId] {
        &self.list
    }

    /// Iterate over the online nodes in dense-slice order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.list.iter().copied()
    }
}

impl<'a> IntoIterator for &'a Membership {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.list.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_remove_contains() {
        let mut m = Membership::new(4);
        assert!(m.is_empty());
        assert!(m.add(n(2)));
        assert!(!m.add(n(2)), "double add is a no-op");
        assert!(m.contains(n(2)));
        assert!(!m.contains(n(1)));
        assert_eq!(m.len(), 1);
        assert!(m.remove(n(2)));
        assert!(!m.remove(n(2)), "double remove is a no-op");
        assert!(m.is_empty());
    }

    #[test]
    fn swap_remove_last_element_aliasing() {
        // Removing the element that *is* the tail of the dense list must
        // not corrupt the positional index (`last == node` aliasing).
        let mut m = Membership::new(3);
        m.add(n(0));
        m.add(n(1));
        m.remove(n(1)); // n(1) is the last list element
        assert!(m.contains(n(0)));
        assert!(!m.contains(n(1)));
        assert_eq!(m.as_slice(), &[n(0)]);
        m.add(n(2));
        assert_eq!(m.as_slice(), &[n(0), n(2)]);
    }

    #[test]
    fn swap_remove_middle_repositions_tail() {
        let mut m = Membership::new(4);
        for i in 0..4 {
            m.add(n(i));
        }
        m.remove(n(1)); // tail n(3) moves into slot 1
        assert_eq!(m.as_slice(), &[n(0), n(3), n(2)]);
        assert!(m.contains(n(3)));
        m.remove(n(3));
        assert_eq!(m.as_slice(), &[n(0), n(2)]);
    }

    #[test]
    fn all_online_and_set_toggle() {
        let mut m = Membership::all_online(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.universe(), 3);
        for i in 0..3 {
            assert!(m.contains(n(i)));
        }
        assert!(m.set(n(1), false));
        assert!(!m.set(n(1), false), "toggle to same state is a no-op");
        assert!(m.set(n(1), true));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn iteration_matches_slice() {
        let mut m = Membership::new(5);
        m.add(n(4));
        m.add(n(0));
        let via_iter: Vec<NodeId> = m.iter().collect();
        let via_for: Vec<NodeId> = (&m).into_iter().collect();
        assert_eq!(via_iter, m.as_slice());
        assert_eq!(via_for, m.as_slice());
    }
}
