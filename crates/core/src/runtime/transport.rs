//! Engine-agnostic node/engine boundary: `Clock`, `Transport`, and
//! `NodeBehavior`.
//!
//! The paper's algorithms (search, exploration, neighbor update,
//! duplicate suppression) are per-node state machines; nothing about
//! them requires virtual time. Historically the three case-study worlds
//! implemented them directly against `ddr-sim`'s event dispatch, so
//! every throughput number was a sim-events/sec claim. These traits
//! split the state machine from the engine that drives it:
//!
//! * [`Clock`] — what time is it, and schedule an event for *this* node
//!   (timers are self-addressed messages);
//! * [`Transport`] — deliver a typed message to *another* node after a
//!   delay (the delay is sampled by the caller, which owns the network
//!   model and its RNG stream);
//! * [`NodeBehavior`] — one node's reaction to one delivered message.
//!
//! Two engines drive the same behavior:
//!
//! * the discrete-event simulator: [`SimTransport`] (an alias for
//!   `ddr_sim::Scheduler`) implements both traits by pushing into the
//!   calendar queue. Events already carry their recipient in the
//!   payload, so `send` is exactly `schedule_after` — which is why the
//!   port of the three worlds onto these traits is bit-identical (see
//!   `tests/runtime_regression.rs`);
//! * the real-time serve bus (`ddr-serve`): sharded worker threads with
//!   bounded channels and a wall-clock `Clock`, driving [`NodeBehavior`]
//!   instances under synthetic load.
//!
//! `NodeBehavior::on_message` is generic over the context (not
//! dyn-safe on purpose): both engines monomorphize the hot path, and
//! the simulator keeps its zero-allocation dispatch.

use ddr_sim::{NodeId, Scheduler, SimDuration, SimTime};

/// Time source plus self-scheduling: timers are messages a node sends
/// to itself.
pub trait Clock<E> {
    /// Current time. Virtual in the simulator, milliseconds since
    /// process start under the serve bus.
    fn now(&self) -> SimTime;

    /// Deliver `event` back to the current node after `delay`.
    fn schedule_after(&mut self, delay: SimDuration, event: E);

    /// Deliver `event` back to the current node at absolute time `at`
    /// (`at >= now`). Kept alongside [`Clock::schedule_after`] because
    /// the peerolap world completes centralized-phase queries "at now",
    /// and the port must preserve its exact scheduling calls.
    fn schedule_at(&mut self, at: SimTime, event: E);
}

/// Typed node-to-node message delivery.
///
/// The *caller* samples `delay` (it owns the `NetworkModel` and the RNG
/// stream that feeds it); the transport only moves the message. `to` is
/// redundant for the single-threaded simulator — payloads carry their
/// recipient — but it is the shard-routing key for the serve bus.
pub trait Transport<E> {
    /// Deliver `event` to node `to` after `delay`.
    fn send(&mut self, to: NodeId, delay: SimDuration, event: E);
}

/// One node's state machine: react to a delivered message (or a
/// self-addressed timer) by mutating local state and emitting further
/// sends/timers through the context.
pub trait NodeBehavior {
    /// The message alphabet of this protocol.
    type Msg;

    /// Handle one delivered message. `from` is the sending node
    /// (`self`'s own id for timers).
    fn on_message<C>(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut C)
    where
        C: Clock<Self::Msg> + Transport<Self::Msg>;
}

/// The discrete-event backend: a [`ddr_sim::Scheduler`] used through the
/// `Clock`/`Transport` traits. The alias names the role; the impls below
/// give it the behavior.
pub type SimTransport<'a, E> = Scheduler<'a, E>;

impl<E> Clock<E> for Scheduler<'_, E> {
    #[inline]
    fn now(&self) -> SimTime {
        Scheduler::now(self)
    }

    #[inline]
    fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.after(delay, event);
    }

    #[inline]
    fn schedule_at(&mut self, at: SimTime, event: E) {
        self.at(at, event);
    }
}

impl<E> Transport<E> for Scheduler<'_, E> {
    /// Simulator events carry their recipient in the payload, so
    /// delivery is pure scheduling — `to` only matters to engines that
    /// route (the serve bus shards by it).
    #[inline]
    fn send(&mut self, _to: NodeId, delay: SimDuration, event: E) {
        self.after(delay, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddr_sim::EventQueue;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ping {
        to: NodeId,
        from: NodeId,
    }

    /// A toy behavior: bounce a ping back to the sender until a hop
    /// budget runs out.
    struct Bouncer {
        id: NodeId,
        hops_left: u32,
        received: u32,
    }

    impl NodeBehavior for Bouncer {
        type Msg = Ping;

        fn on_message<C>(&mut self, from: NodeId, msg: Ping, ctx: &mut C)
        where
            C: Clock<Ping> + Transport<Ping>,
        {
            assert_eq!(msg.to, self.id);
            self.received += 1;
            if self.hops_left > 0 {
                self.hops_left -= 1;
                ctx.send(
                    from,
                    SimDuration::from_millis(5),
                    Ping {
                        to: from,
                        from: self.id,
                    },
                );
            }
        }
    }

    #[test]
    fn scheduler_implements_clock_and_transport() {
        let mut q: EventQueue<Ping> = EventQueue::new();
        {
            let mut sched = q.scheduler();
            assert_eq!(Clock::<Ping>::now(&sched), SimTime::ZERO);
            Clock::schedule_after(
                &mut sched,
                SimDuration::from_millis(10),
                Ping {
                    to: NodeId(0),
                    from: NodeId(0),
                },
            );
            Clock::schedule_at(
                &mut sched,
                SimTime::from_millis(3),
                Ping {
                    to: NodeId(1),
                    from: NodeId(1),
                },
            );
            Transport::send(
                &mut sched,
                NodeId(2),
                SimDuration::from_millis(7),
                Ping {
                    to: NodeId(2),
                    from: NodeId(0),
                },
            );
        }
        // Delivery order follows time: at(3) < send(+7) < after(+10).
        let (t1, e1) = q.pop().unwrap();
        assert_eq!((t1, e1.to), (SimTime::from_millis(3), NodeId(1)));
        let (t2, e2) = q.pop().unwrap();
        assert_eq!((t2, e2.to), (SimTime::from_millis(7), NodeId(2)));
        let (t3, e3) = q.pop().unwrap();
        assert_eq!((t3, e3.to), (SimTime::from_millis(10), NodeId(0)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn node_behavior_runs_under_the_sim_backend() {
        // Two bouncers exchanging pings through the DES: the behavior
        // only ever talks to Clock + Transport, the driver routes.
        let mut nodes = [
            Bouncer {
                id: NodeId(0),
                hops_left: 3,
                received: 0,
            },
            Bouncer {
                id: NodeId(1),
                hops_left: 3,
                received: 0,
            },
        ];
        let mut q: EventQueue<Ping> = EventQueue::new();
        q.schedule_at(
            SimTime::ZERO,
            Ping {
                to: NodeId(0),
                from: NodeId(1),
            },
        );
        let mut last = SimTime::ZERO;
        while let Some((now, msg)) = q.pop() {
            assert!(now >= last);
            last = now;
            let mut sched = q.scheduler();
            nodes[msg.to.index()].on_message(msg.from, msg, &mut sched);
        }
        // First ping + 3 bounces each way until both budgets drain:
        // node 0 receives the seed + node 1's bounces.
        assert_eq!(nodes[0].received + nodes[1].received, 7);
        assert_eq!(nodes[0].hops_left + nodes[1].hops_left, 0);
    }
}
