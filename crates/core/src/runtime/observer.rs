//! Unified observability sink for framework events.
//!
//! Every world emits the same framework-level event stream — a query was
//! issued, a remote hit happened, messages went on the wire, an
//! exploration wave fired, a reconfiguration executed and changed some
//! edges, a first result arrived after some latency. [`SimObserver`] is
//! the sink trait for that stream; the canonical implementation is the
//! shared [`ddr_stats::RuntimeMetrics`] recorder, so the three
//! case-study metrics structs become thin typed views (domain counters)
//! over one common core instead of re-declaring it.
//!
//! [`NullObserver`] is the zero-cost sink (every method is an inlined
//! no-op) for benches and tests that do not collect metrics, and
//! [`ddr_sim::Counters`] gets an impl so white-box tests can forward the
//! same stream into named trace counters.
//!
//! `SimObserver` deliberately carries only **aggregates** (per-hour
//! bucket sums and scalar counters); it never identifies an individual
//! query. Per-query observability — who issued it, which nodes it
//! visited, when and how it terminated — is the job of the
//! `ddr-telemetry` crate's `QueryTracer`, which the worlds thread
//! alongside their observer. The split keeps this trait object-safe and
//! allocation-free while the span layer pays for identity only when a
//! trace sink is compiled in.

use ddr_sim::Counters;
use ddr_stats::RuntimeMetrics;

/// Sink for the framework-level event stream. All methods default to
/// no-ops so observers implement only what they care about.
///
/// `hour` is the reporting bucket (simulated hour in the experiments),
/// matching the paper's per-hour figures.
pub trait SimObserver {
    /// A query / request was issued in `hour`.
    fn on_query(&mut self, hour: usize) {
        let _ = hour;
    }

    /// A query was satisfied remotely in `hour`.
    fn on_hit(&mut self, hour: usize) {
        let _ = hour;
    }

    /// `n` protocol messages were sent in `hour`.
    fn on_messages(&mut self, hour: usize, n: f64) {
        let _ = (hour, n);
    }

    /// A first result arrived `ms` milliseconds after its query.
    fn on_latency_ms(&mut self, ms: f64) {
        let _ = ms;
    }

    /// An exploration wave fired.
    fn on_exploration(&mut self) {}

    /// A reconfiguration (neighbour-list update) executed.
    fn on_update(&mut self) {}

    /// A reconfiguration changed `n` neighbour edges.
    fn on_edges_changed(&mut self, n: u64) {
        let _ = n;
    }
}

/// The zero-cost observer: every hook is an empty default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// The canonical sink: record into the shared metrics recorder.
impl SimObserver for RuntimeMetrics {
    fn on_query(&mut self, hour: usize) {
        self.record_query(hour);
    }

    fn on_hit(&mut self, hour: usize) {
        self.record_hit(hour);
    }

    fn on_messages(&mut self, hour: usize, n: f64) {
        self.record_messages(hour, n);
    }

    fn on_latency_ms(&mut self, ms: f64) {
        self.record_latency_ms(ms);
    }

    fn on_exploration(&mut self) {
        self.record_exploration();
    }

    fn on_update(&mut self) {
        self.record_update();
    }

    fn on_edges_changed(&mut self, n: u64) {
        self.record_edges_changed(n);
    }
}

/// Trace forwarding: fold the event stream into named counters for
/// white-box assertions ("exactly one reconfiguration fired").
impl SimObserver for Counters {
    fn on_query(&mut self, _hour: usize) {
        self.incr("queries");
    }

    fn on_hit(&mut self, _hour: usize) {
        self.incr("hits");
    }

    fn on_messages(&mut self, _hour: usize, n: f64) {
        self.add("messages", n as u64);
    }

    fn on_exploration(&mut self) {
        self.incr("explorations");
    }

    fn on_update(&mut self) {
        self.incr("updates");
    }

    fn on_edges_changed(&mut self, n: u64) {
        self.add("edges_changed", n);
    }
}

/// Fan-out to two observers (e.g. metrics + trace counters).
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    fn on_query(&mut self, hour: usize) {
        self.0.on_query(hour);
        self.1.on_query(hour);
    }

    fn on_hit(&mut self, hour: usize) {
        self.0.on_hit(hour);
        self.1.on_hit(hour);
    }

    fn on_messages(&mut self, hour: usize, n: f64) {
        self.0.on_messages(hour, n);
        self.1.on_messages(hour, n);
    }

    fn on_latency_ms(&mut self, ms: f64) {
        self.0.on_latency_ms(ms);
        self.1.on_latency_ms(ms);
    }

    fn on_exploration(&mut self) {
        self.0.on_exploration();
        self.1.on_exploration();
    }

    fn on_update(&mut self) {
        self.0.on_update();
        self.1.on_update();
    }

    fn on_edges_changed(&mut self, n: u64) {
        self.0.on_edges_changed(n);
        self.1.on_edges_changed(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_metrics_is_the_canonical_sink() {
        let mut m = RuntimeMetrics::new();
        let obs: &mut dyn SimObserver = &mut m;
        obs.on_query(0);
        obs.on_hit(0);
        obs.on_messages(0, 4.0);
        obs.on_latency_ms(80.0);
        obs.on_exploration();
        obs.on_update();
        obs.on_edges_changed(2);
        assert_eq!(m.queries.total(), 1.0);
        assert_eq!(m.hits.total(), 1.0);
        assert_eq!(m.messages.total(), 4.0);
        assert_eq!(m.latency_ms.count(), 1);
        assert_eq!(m.explorations, 1);
        assert_eq!(m.updates, 1);
        assert_eq!(m.edges_changed, 2);
    }

    #[test]
    fn null_observer_accepts_everything() {
        let mut o = NullObserver;
        o.on_query(3);
        o.on_messages(3, 9.0);
        o.on_update();
    }

    #[test]
    fn counters_forwarding_and_pair_fanout() {
        let mut pair = (RuntimeMetrics::new(), Counters::new());
        pair.on_query(1);
        pair.on_messages(1, 3.0);
        pair.on_update();
        assert_eq!(pair.0.queries.total(), 1.0);
        assert_eq!(pair.1.get("queries"), 1);
        assert_eq!(pair.1.get("messages"), 3);
        assert_eq!(pair.1.get("updates"), 1);
    }
}
