//! The threshold-K reconfiguration clock (paper §4.3).
//!
//! "Every K requests" is the paper's update trigger: a node counts local
//! requests and reconfigures its neighbour list once the count reaches
//! the threshold K. Two damping rules ride along:
//!
//! * the count resets when a reconfiguration actually executes, and
//! * it also resets when the node *accepts an invitation* — its
//!   neighbour list just changed for free, so restarting the clock
//!   avoids reconfiguring again on stale statistics (Fig 3(b)'s
//!   interior-optimum shape depends on this damping).
//!
//! The clock always ticks, even in static mode — the world decides
//! whether a due clock actually triggers an update. That keeps static
//! and dynamic runs on identical RNG/event schedules.

/// Counts requests toward a reconfiguration threshold K.
#[derive(Debug, Clone)]
pub struct ReconfigClock {
    count: u32,
    threshold: u32,
}

impl ReconfigClock {
    /// A clock firing every `threshold` requests (K in the paper).
    pub fn new(threshold: u32) -> Self {
        ReconfigClock {
            count: 0,
            threshold,
        }
    }

    /// Note one request; returns `true` when the threshold is reached
    /// (the clock is *due* — call [`ReconfigClock::reset`] after the
    /// update actually executes).
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.count = self.count.saturating_add(1);
        self.count >= self.threshold
    }

    /// Whether the clock is currently due (without ticking).
    pub fn is_due(&self) -> bool {
        self.count >= self.threshold
    }

    /// Restart the count (after an executed update, an accepted
    /// invitation, or a session start).
    #[inline]
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Requests counted since the last reset.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The configured threshold K.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_threshold_and_keeps_firing_until_reset() {
        let mut c = ReconfigClock::new(3);
        assert!(!c.tick());
        assert!(!c.tick());
        assert!(c.tick(), "third tick reaches K=3");
        assert!(c.is_due());
        assert!(c.tick(), "stays due until reset");
        c.reset();
        assert!(!c.is_due());
        assert_eq!(c.count(), 0);
        assert!(!c.tick());
    }

    #[test]
    fn threshold_one_fires_every_tick() {
        let mut c = ReconfigClock::new(1);
        assert!(c.tick());
        c.reset();
        assert!(c.tick());
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut c = ReconfigClock::new(u32::MAX);
        c.count = u32::MAX - 1;
        assert!(c.tick());
        assert!(c.tick(), "saturating add keeps the clock due");
        assert_eq!(c.count(), u32::MAX);
    }
}
