//! # Framework runtime — the node plumbing every case study shares
//!
//! The paper presents search, exploration and neighbour update as
//! *reusable* modules, but a simulator also needs a lot of per-node
//! plumbing that is equally generic and was, before this layer existed,
//! re-implemented by hand in each case-study world:
//!
//! | Concern | Type | Replaces |
//! |---|---|---|
//! | Who is online right now (O(1) set + dense sampling slice, churn toggles) | [`Membership`] | Gnutella's `OnlineSet`, the webcache/peerolap `up`/`present` vectors |
//! | Per-node framework bundle (stats, exploration, dup-cache, reconfig clock) | [`NodeRuntime`] | ad-hoc `{stats, seen, requests_since_*}` fields on `PeerState` / `ProxyState` / `OlapPeer` |
//! | Threshold-K reconfiguration clock with invitation damping | [`ReconfigClock`] | bare `u32` counters compared against config in three places |
//! | Uniform observability sink for framework events | [`SimObserver`] | three bespoke metrics structs duplicating queries/hits/messages/updates |
//!
//! The worlds keep their domain state (caches, pending queries, workload
//! generators) and compose it with a [`NodeRuntime`]; framework-level
//! events are reported through [`SimObserver`], whose canonical
//! implementation is the shared [`ddr_stats::RuntimeMetrics`] recorder.
//! [`NullObserver`] is the zero-cost sink for benches and tests that do
//! not care about metrics.

//! A second split sits *under* the worlds: [`transport`] defines the
//! engine/node boundary (`Clock`, `Transport`, `NodeBehavior`) so the
//! same per-node state machine runs under the discrete-event simulator
//! and the real-time `ddr-serve` bus.

pub mod membership;
pub mod node;
pub mod observer;
pub mod reconfig;
pub mod transport;

pub use membership::Membership;
pub use node::NodeRuntime;
pub use observer::{NullObserver, SimObserver};
pub use reconfig::ReconfigClock;
pub use transport::{Clock, NodeBehavior, SimTransport, Transport};
