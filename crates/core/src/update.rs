//! Neighbor-update algorithms (paper §3.4, Algos 3 & 4).
//!
//! Both algorithms share the same skeleton — *sort every known node by a
//! benefit function, keep the top `capacity`* — and differ in how changes
//! are enacted:
//!
//! * **asymmetric** ([`plan_asymmetric_update`]): the node just rewrites
//!   its outgoing list (safe because pure-asymmetric incoming lists accept
//!   everyone);
//! * **symmetric** ([`UpdatePlan`] consumed by a simulator): additions
//!   require an **invitation** round-trip and removals an **eviction**
//!   notice, so the plan lists both and the simulator plays the protocol.
//!   The invitee's side of the protocol is [`InvitationPolicy::decide`].

use crate::benefit::BenefitFunction;
use crate::search::benefit_sort_key;
use crate::stats_store::StatsStore;
use crate::summary::CategorySummary;
use ddr_sim::NodeId;

/// The outcome of ranking candidates for a new neighborhood.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePlan {
    /// Nodes entering the neighborhood (asymmetric: adopt directly;
    /// symmetric: send invitations), most beneficial first.
    pub add: Vec<NodeId>,
    /// Current neighbors leaving the neighborhood (symmetric: send
    /// eviction notices).
    pub evict: Vec<NodeId>,
    /// Current neighbors that stay.
    pub keep: Vec<NodeId>,
}

impl UpdatePlan {
    /// Whether the plan changes anything.
    pub fn is_noop(&self) -> bool {
        self.add.is_empty() && self.evict.is_empty()
    }

    /// Cap the plan at `max_swaps` neighbor exchanges: keep only the
    /// `max_swaps` most beneficial additions, and only as many evictions
    /// (weakest incumbents first) as capacity requires. The paper's case
    /// study observes that "only one neighbor is exchanged during each
    /// reconfiguration" (§4.3) — this models that damping, which also
    /// limits how much statistics-destroying eviction a single update can
    /// cause.
    ///
    /// Incumbents that became ineligible (e.g. logged off) are always
    /// evicted regardless of the cap — keeping a dead neighbor is never
    /// useful — so `evict` may exceed `max_swaps` by that amount.
    pub fn limit_swaps(
        mut self,
        max_swaps: usize,
        capacity: usize,
        stats: &StatsStore,
        benefit: &dyn BenefitFunction,
        eligible: impl Fn(NodeId) -> bool,
    ) -> UpdatePlan {
        // Ineligible incumbents go unconditionally.
        let (dead, mut alive_evicts): (Vec<NodeId>, Vec<NodeId>) =
            self.evict.into_iter().partition(|&n| !eligible(n));
        self.add.truncate(max_swaps);
        // After dead evictions, occupancy = keep + alive_evicts; we need
        // slots for `add.len()` newcomers.
        let occupied = self.keep.len() + alive_evicts.len();
        let needed = (occupied + self.add.len()).saturating_sub(capacity);
        // Evict the weakest `needed` of the still-alive evict candidates.
        alive_evicts.sort_unstable_by(|&a, &b| {
            let ba = stats.get(a).map(|s| benefit.benefit(s)).unwrap_or(0.0);
            let bb = stats.get(b).map(|s| benefit.benefit(s)).unwrap_or(0.0);
            // NaN-safe ascending: a NaN benefit ranks as -∞, i.e. the
            // poisoned incumbent is evicted first.
            benefit_sort_key(ba)
                .total_cmp(&benefit_sort_key(bb))
                .then(b.cmp(&a))
        });
        let (evicted, kept_after_all): (Vec<NodeId>, Vec<NodeId>) = {
            let evicted = alive_evicts[..needed.min(alive_evicts.len())].to_vec();
            let kept = alive_evicts[needed.min(alive_evicts.len())..].to_vec();
            (evicted, kept)
        };
        self.keep.extend(kept_after_all);
        let mut evict = dead;
        evict.extend(evicted);
        UpdatePlan {
            add: self.add,
            evict,
            keep: self.keep,
        }
    }
}

/// Compute the new best neighborhood of size ≤ `capacity`.
///
/// Candidates are every node in `stats` passing `eligible` (used to filter
/// offline nodes and the node itself) plus all `current` neighbors.
/// Ranking is by `benefit` descending with two paper-faithful refinements:
///
/// * **incumbency tie-break** — on equal benefit a current neighbor wins
///   over a stranger, so neighborhoods don't churn on zero-information
///   ties (important when statistics are sparse, e.g. just after login);
/// * current neighbors that became ineligible (logged off) are always
///   evicted.
pub fn plan_asymmetric_update<F>(
    current: &[NodeId],
    stats: &StatsStore,
    benefit: &dyn BenefitFunction,
    capacity: usize,
    eligible: F,
) -> UpdatePlan
where
    F: Fn(NodeId) -> bool,
{
    let is_current = |n: NodeId| current.contains(&n);

    // Union of stats-known eligible nodes and eligible current neighbors.
    let mut candidates: Vec<(NodeId, f64)> = stats
        .ranked_by(|s| benefit.benefit(s), &eligible)
        .into_iter()
        .collect();
    for &n in current {
        if eligible(n) && stats.get(n).is_none() {
            candidates.push((n, 0.0));
        }
    }
    // benefit desc (NaN-safe: NaN ranks last), incumbents first on ties,
    // then id for determinism
    candidates.sort_unstable_by(|a, b| {
        benefit_sort_key(b.1)
            .total_cmp(&benefit_sort_key(a.1))
            .then_with(|| is_current(b.0).cmp(&is_current(a.0)))
            .then(a.0.cmp(&b.0))
    });
    candidates.dedup_by_key(|c| c.0);
    candidates.truncate(capacity);

    let selected: Vec<NodeId> = candidates.into_iter().map(|(n, _)| n).collect();
    let add: Vec<NodeId> = selected
        .iter()
        .copied()
        .filter(|&n| !is_current(n))
        .collect();
    let keep: Vec<NodeId> = selected
        .iter()
        .copied()
        .filter(|&n| is_current(n))
        .collect();
    let evict: Vec<NodeId> = current
        .iter()
        .copied()
        .filter(|&n| !selected.contains(&n))
        .collect();
    UpdatePlan { add, evict, keep }
}

/// How an invited node answers (paper §3.4's two cases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InvitationPolicy {
    /// Case (i): "a node that receives an invitation always accepts it,
    /// possibly by evicting the least beneficial neighbor" — the music
    /// case study's choice.
    AlwaysAccept,
    /// Case (ii): accept only if the inviter's *known* benefit exceeds the
    /// weakest current neighbor's (nodes without statistics score 0; the
    /// paper's "temporary relationship" variant reduces to having some
    /// statistics available).
    BenefitGated,
    /// Case (ii) via "the exchange of summarized information, according
    /// to which the invitee can assess the potential benefit" (§3.4
    /// solution b): accept a full-list invitation only when the inviter's
    /// content summary is at least `min_similarity`-cosine-similar to the
    /// invitee's own. Missing summaries count as similarity 0.
    SummaryGated {
        /// Minimum cosine similarity between content summaries.
        min_similarity: f64,
    },
    /// Case (ii) via "the establishment of a temporary relationship in
    /// order to start exchanging search and exploration messages and
    /// gather statistics; the relationship will either become permanent
    /// or will terminate after a certain time threshold" (§3.4 solution
    /// a). The decision itself accepts like [`InvitationPolicy::AlwaysAccept`];
    /// the *simulator* schedules a trial-expiry check after
    /// `trial_millis` and unlinks the inviter if it accumulated no
    /// benefit by then.
    TrialPeriod {
        /// Trial length in virtual milliseconds.
        trial_millis: u64,
    },
}

/// Side information available to an invitation decision. The summaries
/// are optional because "such information is not always available"
/// (§3.4) — policies that need a missing summary fall back conservatively.
#[derive(Debug, Clone, Copy, Default)]
pub struct InvitationContext<'a> {
    /// The inviter's content summary, if it travelled with the invitation.
    pub inviter_summary: Option<&'a CategorySummary>,
    /// The invitee's own content summary.
    pub own_summary: Option<&'a CategorySummary>,
}

impl InvitationContext<'_> {
    /// A context carrying no summaries.
    pub fn none() -> Self {
        Self::default()
    }

    /// Cosine similarity between the two summaries (0 if either missing).
    pub fn similarity(&self) -> f64 {
        match (self.inviter_summary, self.own_summary) {
            (Some(a), Some(b)) => a.similarity(b),
            _ => 0.0,
        }
    }
}

/// An invitee's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvitationDecision {
    /// Accept; a full neighbor list requires evicting this neighbor.
    Accept { evict: Option<NodeId> },
    /// Reject the invitation.
    Reject,
}

impl InvitationPolicy {
    /// Decide an incoming invitation at a node whose symmetric neighbor
    /// list is `neighbors` (capacity `capacity`), using the node's own
    /// statistics and benefit function.
    pub fn decide(
        &self,
        inviter: NodeId,
        neighbors: &[NodeId],
        stats: &StatsStore,
        benefit: &dyn BenefitFunction,
        capacity: usize,
        ctx: &InvitationContext<'_>,
    ) -> InvitationDecision {
        debug_assert!(
            !neighbors.contains(&inviter),
            "invited by an existing neighbor"
        );
        if neighbors.len() < capacity {
            return InvitationDecision::Accept { evict: None };
        }
        // The weakest incumbent: lowest benefit, ties by highest id so the
        // choice is deterministic.
        let weakest = neighbors
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ba = stats.get(a).map(|s| benefit.benefit(s)).unwrap_or(0.0);
                let bb = stats.get(b).map(|s| benefit.benefit(s)).unwrap_or(0.0);
                // NaN-safe: a poisoned incumbent ranks weakest.
                benefit_sort_key(ba)
                    .total_cmp(&benefit_sort_key(bb))
                    .then(b.cmp(&a))
            })
            .expect("capacity > 0 implies neighbors non-empty here");
        match self {
            InvitationPolicy::AlwaysAccept | InvitationPolicy::TrialPeriod { .. } => {
                InvitationDecision::Accept {
                    evict: Some(weakest),
                }
            }
            InvitationPolicy::BenefitGated => {
                let inviter_benefit = stats
                    .get(inviter)
                    .map(|s| benefit.benefit(s))
                    .unwrap_or(0.0);
                let weakest_benefit = stats
                    .get(weakest)
                    .map(|s| benefit.benefit(s))
                    .unwrap_or(0.0);
                if inviter_benefit > weakest_benefit {
                    InvitationDecision::Accept {
                        evict: Some(weakest),
                    }
                } else {
                    InvitationDecision::Reject
                }
            }
            InvitationPolicy::SummaryGated { min_similarity } => {
                if ctx.similarity() >= *min_similarity {
                    InvitationDecision::Accept {
                        evict: Some(weakest),
                    }
                } else {
                    InvitationDecision::Reject
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::CumulativeBenefit;
    use crate::stats_store::ReplyObservation;
    use ddr_net::BandwidthClass;
    use ddr_sim::SimTime;

    fn store(pairs: &[(u32, f64)]) -> StatsStore {
        let mut s = StatsStore::new();
        for &(n, b) in pairs {
            s.record_reply(ReplyObservation {
                from: NodeId(n),
                bandwidth: Some(BandwidthClass::Cable),
                score: b,
                latency_ms: 100.0,
                at: SimTime::ZERO,
            });
        }
        s
    }

    #[test]
    fn selects_top_capacity_by_benefit() {
        let s = store(&[(1, 1.0), (2, 5.0), (3, 3.0), (4, 0.5)]);
        let plan = plan_asymmetric_update(&[], &s, &CumulativeBenefit, 2, |_| true);
        assert_eq!(plan.add, vec![NodeId(2), NodeId(3)]);
        assert!(plan.evict.is_empty());
        assert!(plan.keep.is_empty());
    }

    #[test]
    fn evicts_weaker_incumbents() {
        let s = store(&[(1, 1.0), (2, 5.0), (3, 3.0)]);
        let current = [NodeId(1), NodeId(4)]; // 4 has no stats → benefit 0
        let plan = plan_asymmetric_update(&current, &s, &CumulativeBenefit, 2, |_| true);
        assert_eq!(plan.add, vec![NodeId(2), NodeId(3)]);
        let mut evicted = plan.evict.clone();
        evicted.sort();
        assert_eq!(evicted, vec![NodeId(1), NodeId(4)]);
    }

    #[test]
    fn incumbents_win_zero_information_ties() {
        let s = store(&[(9, 0.0)]); // known but zero-benefit stranger
        let current = [NodeId(1)];
        let plan = plan_asymmetric_update(&current, &s, &CumulativeBenefit, 1, |_| true);
        assert!(
            plan.is_noop(),
            "stranger displaced an equal incumbent: {plan:?}"
        );
        assert_eq!(plan.keep, vec![NodeId(1)]);
    }

    #[test]
    fn offline_incumbents_always_evicted() {
        let s = store(&[(1, 10.0)]);
        let current = [NodeId(1)];
        let offline = NodeId(1);
        let plan = plan_asymmetric_update(&current, &s, &CumulativeBenefit, 2, |n| n != offline);
        assert_eq!(plan.evict, vec![NodeId(1)]);
        assert!(plan.keep.is_empty());
    }

    #[test]
    fn respects_capacity_with_keeps_and_adds() {
        let s = store(&[(1, 5.0), (2, 4.0), (3, 3.0), (4, 2.0)]);
        let current = [NodeId(3), NodeId(4)];
        let plan = plan_asymmetric_update(&current, &s, &CumulativeBenefit, 3, |_| true);
        assert_eq!(plan.add, vec![NodeId(1), NodeId(2)]);
        assert_eq!(plan.keep, vec![NodeId(3)]);
        assert_eq!(plan.evict, vec![NodeId(4)]);
        assert_eq!(plan.add.len() + plan.keep.len(), 3);
    }

    #[test]
    fn empty_stats_is_noop_for_incumbents() {
        let s = StatsStore::new();
        let current = [NodeId(1), NodeId(2)];
        let plan = plan_asymmetric_update(&current, &s, &CumulativeBenefit, 2, |_| true);
        assert!(plan.is_noop());
    }

    #[test]
    fn limit_swaps_caps_adds_and_matching_evicts() {
        let s = store(&[(1, 5.0), (2, 4.0), (3, 0.5), (4, 0.2)]);
        let current = [NodeId(3), NodeId(4)];
        // Full plan at capacity 2 would add {1,2} and evict {3,4}.
        let plan = plan_asymmetric_update(&current, &s, &CumulativeBenefit, 2, |_| true);
        assert_eq!(plan.add.len(), 2);
        let limited = plan.limit_swaps(1, 2, &s, &CumulativeBenefit, |_| true);
        assert_eq!(limited.add, vec![NodeId(1)], "keeps only the best add");
        assert_eq!(limited.evict, vec![NodeId(4)], "evicts only the weakest");
        let mut keep = limited.keep.clone();
        keep.sort();
        assert_eq!(keep, vec![NodeId(3)]);
    }

    #[test]
    fn limit_swaps_preserves_dead_evictions() {
        let s = store(&[(1, 5.0)]);
        let current = [NodeId(7), NodeId(8)]; // 7 offline, 8 alive no stats
        let plan = plan_asymmetric_update(&current, &s, &CumulativeBenefit, 2, |n| n != NodeId(7));
        let limited = plan.limit_swaps(1, 2, &s, &CumulativeBenefit, |n| n != NodeId(7));
        assert!(limited.evict.contains(&NodeId(7)), "dead incumbent must go");
        assert_eq!(limited.add, vec![NodeId(1)]);
        // With 7 gone there is room: no need to evict the live incumbent 8.
        assert!(!limited.evict.contains(&NodeId(8)));
        assert!(limited.keep.contains(&NodeId(8)));
    }

    #[test]
    fn limit_swaps_noop_passthrough() {
        let s = StatsStore::new();
        let plan = plan_asymmetric_update(&[NodeId(1)], &s, &CumulativeBenefit, 2, |_| true);
        let limited = plan.limit_swaps(1, 2, &s, &CumulativeBenefit, |_| true);
        assert!(limited.is_noop());
        assert_eq!(limited.keep, vec![NodeId(1)]);
    }

    #[test]
    fn always_accept_with_free_slot() {
        let s = StatsStore::new();
        let d = InvitationPolicy::AlwaysAccept.decide(
            NodeId(9),
            &[NodeId(1)],
            &s,
            &CumulativeBenefit,
            4,
            &InvitationContext::none(),
        );
        assert_eq!(d, InvitationDecision::Accept { evict: None });
    }

    #[test]
    fn always_accept_full_evicts_weakest() {
        let s = store(&[(1, 5.0), (2, 1.0), (3, 3.0), (4, 2.0)]);
        let d = InvitationPolicy::AlwaysAccept.decide(
            NodeId(9),
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
            &s,
            &CumulativeBenefit,
            4,
            &InvitationContext::none(),
        );
        assert_eq!(
            d,
            InvitationDecision::Accept {
                evict: Some(NodeId(2))
            }
        );
    }

    #[test]
    fn benefit_gated_rejects_unknown_inviter() {
        let s = store(&[(1, 5.0), (2, 1.0)]);
        let d = InvitationPolicy::BenefitGated.decide(
            NodeId(9), // unknown → benefit 0, weakest incumbent has 1.0
            &[NodeId(1), NodeId(2)],
            &s,
            &CumulativeBenefit,
            2,
            &InvitationContext::none(),
        );
        assert_eq!(d, InvitationDecision::Reject);
    }

    #[test]
    fn benefit_gated_accepts_known_strong_inviter() {
        let s = store(&[(1, 5.0), (2, 1.0), (9, 3.0)]);
        let d = InvitationPolicy::BenefitGated.decide(
            NodeId(9),
            &[NodeId(1), NodeId(2)],
            &s,
            &CumulativeBenefit,
            2,
            &InvitationContext::none(),
        );
        assert_eq!(
            d,
            InvitationDecision::Accept {
                evict: Some(NodeId(2))
            }
        );
    }

    #[test]
    fn benefit_gated_accepts_into_free_slot_regardless() {
        let s = StatsStore::new();
        let d = InvitationPolicy::BenefitGated.decide(
            NodeId(9),
            &[],
            &s,
            &CumulativeBenefit,
            2,
            &InvitationContext::none(),
        );
        assert_eq!(d, InvitationDecision::Accept { evict: None });
    }

    #[test]
    fn summary_gated_accepts_similar_inviter() {
        use crate::summary::CategorySummary;
        let s = store(&[(1, 1.0), (2, 2.0)]);
        // Both profiles concentrated in category 0 → similarity ≈ 1.
        let items: Vec<ddr_sim::ItemId> = (0..10).map(|_| ddr_sim::ItemId(0)).collect();
        let mine = CategorySummary::build(&items, 3, |_| 0);
        let theirs = mine.clone();
        let ctx = InvitationContext {
            inviter_summary: Some(&theirs),
            own_summary: Some(&mine),
        };
        let d = InvitationPolicy::SummaryGated {
            min_similarity: 0.8,
        }
        .decide(
            NodeId(9),
            &[NodeId(1), NodeId(2)],
            &s,
            &CumulativeBenefit,
            2,
            &ctx,
        );
        assert_eq!(
            d,
            InvitationDecision::Accept {
                evict: Some(NodeId(1))
            }
        );
    }

    #[test]
    fn summary_gated_rejects_dissimilar_or_missing() {
        use crate::summary::CategorySummary;
        let s = store(&[(1, 1.0), (2, 2.0)]);
        let a_items = [ddr_sim::ItemId(0)];
        let b_items = [ddr_sim::ItemId(1)];
        let mine = CategorySummary::build(&a_items, 3, |i| i.0 as usize);
        let theirs = CategorySummary::build(&b_items, 3, |i| i.0 as usize);
        let policy = InvitationPolicy::SummaryGated {
            min_similarity: 0.5,
        };
        // dissimilar
        let ctx = InvitationContext {
            inviter_summary: Some(&theirs),
            own_summary: Some(&mine),
        };
        assert_eq!(
            policy.decide(
                NodeId(9),
                &[NodeId(1), NodeId(2)],
                &s,
                &CumulativeBenefit,
                2,
                &ctx
            ),
            InvitationDecision::Reject
        );
        // missing summaries → similarity 0 → reject when full
        assert_eq!(
            policy.decide(
                NodeId(9),
                &[NodeId(1), NodeId(2)],
                &s,
                &CumulativeBenefit,
                2,
                &InvitationContext::none()
            ),
            InvitationDecision::Reject
        );
        // ... but still accepts into a free slot
        assert_eq!(
            policy.decide(
                NodeId(9),
                &[NodeId(1)],
                &s,
                &CumulativeBenefit,
                2,
                &InvitationContext::none()
            ),
            InvitationDecision::Accept { evict: None }
        );
    }
}
