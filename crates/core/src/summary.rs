//! Summarized content information (paper §3.4, solution (b) to the
//! invitation-assessment problem: "the exchange of summarized
//! information, according to which the invitee can assess the potential
//! benefit" — and §3.2's "use summary info if available").
//!
//! A [`CategorySummary`] is a per-category histogram of a node's library:
//! tiny (one counter per category, 50 in the paper's catalog), cheap to
//! compare, and exactly the kind of digest a Gnutella extension could
//! piggyback on invitations. Similarity is the cosine between histograms,
//! which is 1.0 for identical taste profiles and ≈ 0 for disjoint ones.

use ddr_sim::ItemId;

/// A per-category item-count histogram of one node's content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategorySummary {
    counts: Vec<u32>,
}

impl CategorySummary {
    /// Build from an item list and a category-of mapping.
    pub fn build<F>(items: &[ItemId], categories: usize, category_of: F) -> Self
    where
        F: Fn(ItemId) -> usize,
    {
        let mut counts = vec![0u32; categories];
        for &item in items {
            let c = category_of(item);
            debug_assert!(c < categories, "category {c} out of range");
            counts[c] += 1;
        }
        CategorySummary { counts }
    }

    /// An empty summary over `categories` categories.
    pub fn empty(categories: usize) -> Self {
        CategorySummary {
            counts: vec![0; categories],
        }
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Total items summarised.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Item count of one category.
    pub fn count(&self, category: usize) -> u32 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Cosine similarity in `[0, 1]`; 0 when either summary is empty.
    ///
    /// # Panics
    /// Panics when the category dimensions differ — comparing summaries
    /// from different catalogs is a logic error.
    pub fn similarity(&self, other: &CategorySummary) -> f64 {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "summary dimension mismatch"
        );
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            dot += a as f64 * b as f64;
            na += (a as f64) * (a as f64);
            nb += (b as f64) * (b as f64);
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// The dominant category (most items), ties to the lowest index;
    /// `None` when empty.
    pub fn dominant_category(&self) -> Option<usize> {
        let (idx, &max) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        (max > 0).then_some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(counts: &[u32]) -> CategorySummary {
        let items: Vec<ItemId> = counts
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| std::iter::repeat_n(ItemId(c as u32), n as usize))
            .collect();
        CategorySummary::build(&items, counts.len(), |i| i.0 as usize)
    }

    #[test]
    fn build_counts_by_category() {
        let s = summary(&[2, 0, 3]);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.count(1), 0);
        assert_eq!(s.count(2), 3);
        assert_eq!(s.total(), 5);
        assert_eq!(s.categories(), 3);
        assert_eq!(s.count(99), 0, "out-of-range reads are zero");
    }

    #[test]
    fn identical_profiles_have_similarity_one() {
        let a = summary(&[10, 5, 0, 1]);
        assert!((a.similarity(&a) - 1.0).abs() < 1e-12);
        // scale invariance of cosine
        let b = summary(&[20, 10, 0, 2]);
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_profiles_have_similarity_zero() {
        let a = summary(&[10, 0, 0]);
        let b = summary(&[0, 10, 0]);
        assert_eq!(a.similarity(&b), 0.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let a = summary(&[10, 10, 0]);
        let b = summary(&[10, 0, 10]);
        let s = a.similarity(&b);
        assert!(s > 0.0 && s < 1.0, "got {s}");
    }

    #[test]
    fn empty_similarity_is_zero() {
        let a = CategorySummary::empty(3);
        let b = summary(&[1, 2, 3]);
        assert_eq!(a.similarity(&b), 0.0);
        assert_eq!(b.similarity(&a), 0.0);
        assert_eq!(a.similarity(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let a = CategorySummary::empty(3);
        let b = CategorySummary::empty(4);
        let _ = a.similarity(&b);
    }

    #[test]
    fn dominant_category() {
        assert_eq!(summary(&[1, 5, 3]).dominant_category(), Some(1));
        assert_eq!(
            summary(&[4, 4, 0]).dominant_category(),
            Some(0),
            "ties to lowest"
        );
        assert_eq!(CategorySummary::empty(3).dominant_category(), None);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = summary(&[3, 1, 4, 1, 5]);
        let b = summary(&[2, 7, 1, 8, 2]);
        assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-15);
    }
}
