//! Query descriptors shared by the search machinery.

use ddr_sim::{ItemId, NodeId, QueryId, SimTime};

/// A propagating search request (one per user query; the id travels with
/// every forwarded copy so duplicate suppression works across paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryDescriptor {
    /// Unique id of this query instance.
    pub id: QueryId,
    /// The node that issued the query (replies travel back to it; the
    /// paper's case study replies directly to the initiator rather than
    /// via the reverse route, which changes delay but not hit counts).
    pub origin: NodeId,
    /// The item searched for (each query requests exactly one song).
    pub item: ItemId,
    /// Remaining hops ("all propagations terminate after h hops").
    pub ttl: u8,
    /// Hops this copy has travelled from the origin (1 on first
    /// arrival at a neighbor). Lets responders report their overlay
    /// distance, the quantity behind the paper's "most of the results
    /// come from nearby nodes" claim.
    pub travelled: u8,
    /// Issue time at the origin, for first-result delay measurement.
    pub issued_at: SimTime,
}

impl QueryDescriptor {
    /// The descriptor for the next hop: TTL decremented.
    ///
    /// # Panics
    /// Panics if the TTL is already zero (forwarding such a query is a
    /// protocol bug the simulators must not commit).
    pub fn next_hop(&self) -> QueryDescriptor {
        assert!(self.ttl > 0, "forwarded a dead query {}", self.id);
        QueryDescriptor {
            ttl: self.ttl - 1,
            travelled: self.travelled.saturating_add(1),
            ..*self
        }
    }

    /// Whether the query may travel further.
    pub fn alive(&self) -> bool {
        self.ttl > 0
    }
}

/// Aggregate outcome of one user query, recorded at the initiator when the
/// collection timeout fires.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The query.
    pub query: QueryDescriptor,
    /// Nodes that returned the item, in arrival order.
    pub responders: Vec<NodeId>,
    /// Arrival time of the first result, if any.
    pub first_result_at: Option<SimTime>,
}

impl SearchOutcome {
    /// An outcome with no responders (miss).
    pub fn miss(query: QueryDescriptor) -> Self {
        SearchOutcome {
            query,
            responders: Vec::new(),
            first_result_at: None,
        }
    }

    /// Whether at least one result arrived.
    pub fn hit(&self) -> bool {
        !self.responders.is_empty()
    }

    /// Number of results (the `R` in the paper's `B/R` benefit).
    pub fn result_count(&self) -> usize {
        self.responders.len()
    }

    /// Delay from issue to first result.
    pub fn first_result_delay(&self) -> Option<ddr_sim::SimDuration> {
        self.first_result_at
            .map(|t| t.saturating_since(self.query.issued_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddr_sim::SimDuration;

    fn q(ttl: u8) -> QueryDescriptor {
        QueryDescriptor {
            id: QueryId(1),
            origin: NodeId(0),
            item: ItemId(5),
            ttl,
            travelled: 1,
            issued_at: SimTime::from_millis(100),
        }
    }

    #[test]
    fn next_hop_decrements_ttl_and_counts_distance() {
        let d = q(3).next_hop();
        assert_eq!(d.ttl, 2);
        assert_eq!(d.travelled, 2);
        assert!(d.alive());
        assert_eq!(d.id, QueryId(1));
    }

    #[test]
    #[should_panic(expected = "dead query")]
    fn forwarding_dead_query_panics() {
        let _ = q(0).next_hop();
    }

    #[test]
    fn ttl_one_is_alive_until_forwarded() {
        let d = q(1);
        assert!(d.alive());
        assert!(!d.next_hop().alive());
    }

    #[test]
    fn outcome_hit_and_delay() {
        let mut o = SearchOutcome::miss(q(2));
        assert!(!o.hit());
        assert_eq!(o.first_result_delay(), None);
        o.responders.push(NodeId(7));
        o.first_result_at = Some(SimTime::from_millis(450));
        assert!(o.hit());
        assert_eq!(o.result_count(), 1);
        assert_eq!(o.first_result_delay(), Some(SimDuration::from_millis(350)));
    }
}
