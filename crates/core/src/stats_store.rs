//! Per-node statistics about *other* nodes (paper §3.4: "this requires
//! maintaining information for both the neighboring and the
//! non-neighboring nodes that were encountered through search and
//! exploration").
//!
//! The store is the substrate every benefit function reads and every
//! neighbor-update algorithm ranks over. Eviction handling follows Algo 5's
//! `Process_Eviction`: "the node's statistical information is reset, so
//! that it will not attempt to reconnect in the near future".

use ddr_net::BandwidthClass;
use ddr_sim::{FastHashMap, NodeId, SimTime};

/// Accumulated knowledge about one remote node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Results received from this node across all queries.
    pub results: u64,
    /// Queries this node answered (≤ `results` when multi-item replies
    /// exist; equal in the one-song-per-query case study).
    pub answered: u64,
    /// Cumulative benefit (Σ per-result scores, e.g. Σ B/R).
    pub benefit: f64,
    /// Last time any statistic changed.
    pub last_update: SimTime,
    /// Bandwidth class advertised in replies (Ping-Pong info), if seen.
    pub bandwidth: Option<BandwidthClass>,
    /// Sum and count of observed reply latencies, for latency-aware
    /// benefit functions.
    pub latency_sum_ms: f64,
    /// Number of latency observations.
    pub latency_count: u64,
}

impl NodeStats {
    fn new(now: SimTime) -> Self {
        NodeStats {
            results: 0,
            answered: 0,
            benefit: 0.0,
            last_update: now,
            bandwidth: None,
            latency_sum_ms: 0.0,
            latency_count: 0,
        }
    }

    /// Mean observed reply latency in ms (`None` before any observation).
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum_ms / self.latency_count as f64)
        }
    }
}

/// One reply observation to fold into the store.
#[derive(Debug, Clone, Copy)]
pub struct ReplyObservation {
    /// Who answered.
    pub from: NodeId,
    /// Their advertised bandwidth class, when the system has one (the
    /// music case study); `None` for systems without bandwidth classes
    /// (the web-cache case study).
    pub bandwidth: Option<BandwidthClass>,
    /// Per-result benefit increment (e.g. `B / R`).
    pub score: f64,
    /// Observed issue→reply latency in milliseconds.
    pub latency_ms: f64,
    /// When the reply arrived.
    pub at: SimTime,
}

/// A node's statistics table over every other node it has encountered.
#[derive(Debug, Clone, Default)]
pub struct StatsStore {
    entries: FastHashMap<NodeId, NodeStats>,
}

impl StatsStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes with statistics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no node has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics for `node`, if any.
    pub fn get(&self, node: NodeId) -> Option<&NodeStats> {
        self.entries.get(&node)
    }

    /// Fold one reply into the store ("obtain results and update
    /// statistics", Algo 1).
    pub fn record_reply(&mut self, obs: ReplyObservation) {
        let e = self
            .entries
            .entry(obs.from)
            .or_insert_with(|| NodeStats::new(obs.at));
        e.results += 1;
        e.answered += 1;
        e.benefit += obs.score;
        if obs.bandwidth.is_some() {
            e.bandwidth = obs.bandwidth;
        }
        e.latency_sum_ms += obs.latency_ms;
        e.latency_count += 1;
        e.last_update = obs.at;
    }

    /// Record exploration-derived knowledge (statistics and summarized
    /// information, Algo 2) without counting a result.
    pub fn record_exploration(&mut self, node: NodeId, bandwidth: BandwidthClass, at: SimTime) {
        let e = self
            .entries
            .entry(node)
            .or_insert_with(|| NodeStats::new(at));
        e.bandwidth = Some(bandwidth);
        e.last_update = at;
    }

    /// Reset the statistics of `node` (Algo 5 `Process_Eviction`). The
    /// entry is removed outright so the evictor drops out of rankings until
    /// re-encountered.
    pub fn reset_node(&mut self, node: NodeId) {
        self.entries.remove(&node);
    }

    /// Overwrite a node's freshness timestamp without touching its
    /// accumulated statistics. Recency-based liveness proxies use this to
    /// mark a candidate stale when it failed to answer (e.g. a refused
    /// invitation means it is probably offline); the next genuine
    /// observation refreshes the timestamp and re-qualifies it.
    pub fn touch(&mut self, node: NodeId, at: SimTime) {
        if let Some(e) = self.entries.get_mut(&node) {
            e.last_update = at;
        }
    }

    /// Multiply every node's accumulated benefit by `factor` (0 ≤ factor
    /// ≤ 1). Called once per reconfiguration epoch so rankings weigh the
    /// evidence gathered since the last update most heavily: a sample
    /// from `e` epochs ago weighs `factor^e`. This is what prices a
    /// hyperactive reconfiguration clock (paper Fig 3b) — with threshold
    /// K the ranking rests on ~K fresh results plus a decayed tail, so
    /// K=1 swaps chase single-query noise while larger K averages over
    /// many samples. Uniform decay preserves the within-epoch ordering.
    pub fn decay_benefit(&mut self, factor: f64) {
        for e in self.entries.values_mut() {
            e.benefit *= factor;
        }
    }

    /// Drop entries older than `horizon` (staleness control for long-lived
    /// asymmetric deployments; not used in the paper's 4-day runs).
    pub fn expire_older_than(&mut self, horizon: SimTime) {
        self.entries.retain(|_, s| s.last_update >= horizon);
    }

    /// Nodes ranked by `score` descending, ties broken by id for
    /// determinism. `filter` prunes candidates (e.g. offline nodes).
    pub fn ranked_by<F, P>(&self, score: F, filter: P) -> Vec<(NodeId, f64)>
    where
        F: Fn(&NodeStats) -> f64,
        P: Fn(NodeId) -> bool,
    {
        let mut v: Vec<(NodeId, f64)> = self
            .entries
            .iter()
            .filter(|(&n, _)| filter(n))
            .map(|(&n, s)| (n, score(s)))
            .collect();
        v.sort_unstable_by(|a, b| {
            // NaN-safe descending (NaN ranks last); see
            // `crate::search::benefit_sort_key`.
            crate::search::benefit_sort_key(b.1)
                .total_cmp(&crate::search::benefit_sort_key(a.1))
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Iterate over all `(node, stats)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeStats)> {
        self.entries.iter().map(|(&n, s)| (n, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(from: u32, score: f64, at: u64) -> ReplyObservation {
        ReplyObservation {
            from: NodeId(from),
            bandwidth: Some(BandwidthClass::Cable),
            score,
            latency_ms: 150.0,
            at: SimTime::from_millis(at),
        }
    }

    #[test]
    fn replies_accumulate() {
        let mut s = StatsStore::new();
        s.record_reply(obs(1, 0.5, 10));
        s.record_reply(obs(1, 0.25, 20));
        let e = s.get(NodeId(1)).unwrap();
        assert_eq!(e.results, 2);
        assert_eq!(e.benefit, 0.75);
        assert_eq!(e.bandwidth, Some(BandwidthClass::Cable));
        assert_eq!(e.mean_latency_ms(), Some(150.0));
        assert_eq!(e.last_update, SimTime::from_millis(20));
    }

    #[test]
    fn exploration_records_without_results() {
        let mut s = StatsStore::new();
        s.record_exploration(NodeId(2), BandwidthClass::Lan, SimTime::from_millis(5));
        let e = s.get(NodeId(2)).unwrap();
        assert_eq!(e.results, 0);
        assert_eq!(e.benefit, 0.0);
        assert_eq!(e.bandwidth, Some(BandwidthClass::Lan));
        assert_eq!(e.mean_latency_ms(), None);
    }

    #[test]
    fn reset_removes_entry() {
        let mut s = StatsStore::new();
        s.record_reply(obs(3, 1.0, 10));
        s.reset_node(NodeId(3));
        assert!(s.get(NodeId(3)).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn ranking_descends_with_deterministic_ties() {
        let mut s = StatsStore::new();
        s.record_reply(obs(5, 1.0, 10));
        s.record_reply(obs(2, 3.0, 10));
        s.record_reply(obs(9, 1.0, 10));
        let ranked = s.ranked_by(|st| st.benefit, |_| true);
        assert_eq!(
            ranked.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![NodeId(2), NodeId(5), NodeId(9)]
        );
    }

    #[test]
    fn ranking_respects_filter() {
        let mut s = StatsStore::new();
        s.record_reply(obs(1, 5.0, 10));
        s.record_reply(obs(2, 1.0, 10));
        let ranked = s.ranked_by(|st| st.benefit, |n| n != NodeId(1));
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].0, NodeId(2));
    }

    #[test]
    fn expiry_drops_stale() {
        let mut s = StatsStore::new();
        s.record_reply(obs(1, 1.0, 10));
        s.record_reply(obs(2, 1.0, 500));
        s.expire_older_than(SimTime::from_millis(100));
        assert!(s.get(NodeId(1)).is_none());
        assert!(s.get(NodeId(2)).is_some());
    }
}
