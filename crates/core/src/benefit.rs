//! Benefit functions (paper §3.4: "The benefit function should capture the
//! general goals and characteristics of the system").
//!
//! Two layers:
//!
//! * [`ResultScore`] — the *per-result* increment folded into the stats
//!   store when a reply arrives. The paper's music case study uses
//!   `B / R` (B = answering link bandwidth weight, R = result-list size:
//!   "the larger the results list, the lesser its significance").
//! * [`BenefitFunction`] — the *ranking* score computed from a node's
//!   accumulated [`NodeStats`] when neighbors are re-selected.

use crate::stats_store::NodeStats;
use ddr_net::BandwidthClass;

/// Per-result score policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResultScore {
    /// The paper's music-sharing score: `B / R` where `B` is the
    /// responder's bandwidth weight and `R` the total number of results
    /// the query obtained.
    BandwidthOverResults,
    /// Every result counts 1 (web-caching style, "the number of retrieved
    /// pages … is a good candidate").
    Unit,
    /// Bandwidth weight alone, ignoring result-list size (ablation).
    BandwidthOnly,
    /// `B / R` with the *raw line-rate* weight (1 : 27 : 179) instead of
    /// the delay-based weight — ablation showing how an extreme `B`
    /// swamps the content-similarity signal.
    RawBandwidthOverResults,
}

impl ResultScore {
    /// Score one result: `bandwidth` is the responder's class, `results`
    /// the total result count of the query (≥ 1).
    pub fn score(self, bandwidth: BandwidthClass, results: usize) -> f64 {
        debug_assert!(results >= 1, "scored a result of a zero-result query");
        match self {
            ResultScore::BandwidthOverResults => bandwidth.benefit_weight() / results.max(1) as f64,
            ResultScore::Unit => 1.0,
            ResultScore::BandwidthOnly => bandwidth.benefit_weight(),
            ResultScore::RawBandwidthOverResults => {
                bandwidth.raw_rate_weight() / results.max(1) as f64
            }
        }
    }
}

/// Ranking functions over accumulated statistics.
pub trait BenefitFunction: Send + Sync {
    /// The score used to rank node candidates; higher is better.
    fn benefit(&self, stats: &NodeStats) -> f64;

    /// A short name for tables and run banners.
    fn name(&self) -> &'static str;
}

/// The paper's case-study ranking: cumulative Σ-score (with `B/R`
/// per-result scores this is exactly "the cumulative benefit of all nodes
/// for which it keeps statistics").
#[derive(Debug, Clone, Copy, Default)]
pub struct CumulativeBenefit;

impl BenefitFunction for CumulativeBenefit {
    fn benefit(&self, stats: &NodeStats) -> f64 {
        stats.benefit
    }
    fn name(&self) -> &'static str {
        "cumulative"
    }
}

/// Pure result-count ranking (ablation: ignores bandwidth and list size).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountBenefit;

impl BenefitFunction for CountBenefit {
    fn benefit(&self, stats: &NodeStats) -> f64 {
        stats.results as f64
    }
    fn name(&self) -> &'static str {
        "count"
    }
}

/// Latency-aware ranking for the web-caching instantiation ("the number of
/// retrieved pages, combined with the end-to-end latency, is a good
/// candidate for benefit"): results per second of observed latency.
#[derive(Debug, Clone, Copy)]
pub struct LatencyAwareBenefit {
    /// Latency floor in ms, preventing division blow-ups for LAN-fast
    /// neighbors.
    pub floor_ms: f64,
}

impl Default for LatencyAwareBenefit {
    fn default() -> Self {
        LatencyAwareBenefit { floor_ms: 1.0 }
    }
}

impl BenefitFunction for LatencyAwareBenefit {
    fn benefit(&self, stats: &NodeStats) -> f64 {
        let lat = stats.mean_latency_ms().unwrap_or(f64::INFINITY);
        stats.results as f64 / (lat.max(self.floor_ms) / 1_000.0)
    }
    fn name(&self) -> &'static str {
        "latency-aware"
    }
}

/// Advertised-bandwidth ranking (uses exploration info only; nodes without
/// a known class rank last). Models neighbor selection driven purely by
/// Ping-Pong data.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvertisedBandwidthBenefit;

impl BenefitFunction for AdvertisedBandwidthBenefit {
    fn benefit(&self, stats: &NodeStats) -> f64 {
        stats.bandwidth.map(|b| b.benefit_weight()).unwrap_or(0.0)
    }
    fn name(&self) -> &'static str {
        "advertised-bandwidth"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddr_sim::SimTime;

    fn stats(results: u64, benefit: f64, lat_ms: f64, lat_n: u64) -> NodeStats {
        NodeStats {
            results,
            answered: results,
            benefit,
            last_update: SimTime::ZERO,
            bandwidth: Some(BandwidthClass::Cable),
            latency_sum_ms: lat_ms * lat_n as f64,
            latency_count: lat_n,
        }
    }

    #[test]
    fn paper_score_divides_by_result_count() {
        let s = ResultScore::BandwidthOverResults;
        let one = s.score(BandwidthClass::Lan, 1);
        let ten = s.score(BandwidthClass::Lan, 10);
        assert!((one / ten - 10.0).abs() < 1e-12);
    }

    #[test]
    fn paper_score_scales_with_bandwidth() {
        let s = ResultScore::BandwidthOverResults;
        assert!(s.score(BandwidthClass::Lan, 3) > s.score(BandwidthClass::Modem56K, 3));
    }

    #[test]
    fn unit_score_ignores_everything() {
        assert_eq!(ResultScore::Unit.score(BandwidthClass::Modem56K, 100), 1.0);
        assert_eq!(ResultScore::Unit.score(BandwidthClass::Lan, 1), 1.0);
    }

    #[test]
    fn cumulative_ranks_by_accumulated_benefit() {
        let f = CumulativeBenefit;
        assert!(f.benefit(&stats(1, 5.0, 100.0, 1)) > f.benefit(&stats(10, 2.0, 100.0, 10)));
    }

    #[test]
    fn count_ranks_by_results() {
        let f = CountBenefit;
        assert!(f.benefit(&stats(10, 2.0, 100.0, 10)) > f.benefit(&stats(1, 5.0, 100.0, 1)));
    }

    #[test]
    fn latency_aware_prefers_fast_nodes() {
        let f = LatencyAwareBenefit::default();
        let fast = stats(5, 0.0, 70.0, 5);
        let slow = stats(5, 0.0, 300.0, 5);
        assert!(f.benefit(&fast) > f.benefit(&slow));
        // equal latency → more results win
        let more = stats(10, 0.0, 70.0, 10);
        assert!(f.benefit(&more) > f.benefit(&fast));
    }

    #[test]
    fn latency_aware_handles_no_observations() {
        let f = LatencyAwareBenefit::default();
        let mut s = stats(3, 0.0, 0.0, 0);
        s.latency_count = 0;
        s.latency_sum_ms = 0.0;
        assert_eq!(f.benefit(&s), 0.0);
    }

    #[test]
    fn advertised_bandwidth_unknown_ranks_last() {
        let f = AdvertisedBandwidthBenefit;
        let mut unknown = stats(3, 3.0, 100.0, 3);
        unknown.bandwidth = None;
        let known = stats(0, 0.0, 0.0, 0);
        assert!(f.benefit(&known) > f.benefit(&unknown));
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            CumulativeBenefit.name(),
            CountBenefit.name(),
            LatencyAwareBenefit::default().name(),
            AdvertisedBandwidthBenefit.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
