//! Search policies (paper §3.2, Algo 1).
//!
//! Two orthogonal choices parameterise the generic search algorithm:
//!
//! * **where to forward** — "from the simple send-to-all approach to
//!   random, or history based selection" → [`ForwardSelection`];
//! * **when to stop** — "a common threshold … is the maximum number of
//!   hops" → [`TerminationPolicy`].
//!
//! [`IterativeDeepening`] implements Yang & Garcia-Molina's technique
//! (§2): successive BFS waves with growing depth until the query is
//! satisfied or the maximum depth is reached. It is a *driver* strategy at
//! the initiator; each wave uses the ordinary forward/termination
//! machinery.

use crate::benefit::BenefitFunction;
use crate::stats_store::StatsStore;
use ddr_sim::{NodeId, SimDuration};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which outgoing neighbors receive a (forwarded) query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardSelection {
    /// Flood: send to every outgoing neighbor (Gnutella BFS; the paper's
    /// case study).
    All,
    /// Send to `k` uniformly random outgoing neighbors.
    RandomK(usize),
    /// Directed BFT: send to the `k` most beneficial outgoing neighbors
    /// according to the node's statistics; unknown nodes rank last but are
    /// still eligible (exploration pressure).
    TopKBenefit(usize),
}

/// Normalise a benefit value into a key safe for [`f64::total_cmp`]
/// ranking: `NaN` maps to `-∞` so a poisoned statistic deterministically
/// ranks *last* instead of destabilising the sort, and `-0.0` folds onto
/// `+0.0` (via `x + 0.0`) so the zero produced by "no statistics yet"
/// compares equal to a computed zero.
#[inline]
pub fn benefit_sort_key(x: f64) -> f64 {
    if x.is_nan() {
        f64::NEG_INFINITY
    } else {
        x + 0.0
    }
}

impl ForwardSelection {
    /// Select forward targets among `neighbors`, never including
    /// `exclude` (the node the query just arrived from — echoing a query
    /// straight back is always wasted).
    ///
    /// Allocates a fresh `Vec`; the event-loop hot path uses
    /// [`select_into`](Self::select_into) with a reused scratch buffer
    /// instead.
    pub fn select<R: Rng + ?Sized>(
        &self,
        neighbors: &[NodeId],
        exclude: Option<NodeId>,
        stats: &StatsStore,
        benefit: &dyn BenefitFunction,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(neighbors.len());
        self.select_into(neighbors, exclude, stats, benefit, rng, &mut out);
        out
    }

    /// Allocation-free variant of [`select`](Self::select): clears `out`
    /// and fills it with the chosen targets. Identical selection and
    /// ordering semantics.
    pub fn select_into<R: Rng + ?Sized>(
        &self,
        neighbors: &[NodeId],
        exclude: Option<NodeId>,
        stats: &StatsStore,
        benefit: &dyn BenefitFunction,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        out.extend(neighbors.iter().copied().filter(|&n| Some(n) != exclude));
        match *self {
            ForwardSelection::All => {}
            ForwardSelection::RandomK(k) => {
                out.shuffle(rng);
                out.truncate(k);
            }
            ForwardSelection::TopKBenefit(k) => {
                // Deterministic ordering: benefit desc (NaN-safe via
                // total_cmp on normalised keys), id asc. Nodes with no
                // statistics score 0.
                out.sort_unstable_by(|&a, &b| {
                    let ba = stats.get(a).map(|s| benefit.benefit(s)).unwrap_or(0.0);
                    let bb = stats.get(b).map(|s| benefit.benefit(s)).unwrap_or(0.0);
                    benefit_sort_key(bb)
                        .total_cmp(&benefit_sort_key(ba))
                        .then(a.cmp(&b))
                });
                out.truncate(k);
            }
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            ForwardSelection::All => "flood".into(),
            ForwardSelection::RandomK(k) => format!("random-{k}"),
            ForwardSelection::TopKBenefit(k) => format!("directed-bft-{k}"),
        }
    }
}

/// When query propagation stops (beyond "a node holding the result replies
/// and does not forward", which the simulators implement directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerminationPolicy {
    /// Maximum hops a query may travel (Squid: 1; Gnutella: up to 7; the
    /// paper's experiments: 1–4 with 5 for the combined process).
    pub max_hops: u8,
}

impl TerminationPolicy {
    /// A policy with the given hop limit.
    pub const fn hops(max_hops: u8) -> Self {
        TerminationPolicy { max_hops }
    }

    /// Initial TTL for a fresh query.
    pub const fn initial_ttl(&self) -> u8 {
        self.max_hops
    }
}

/// Iterative deepening: a schedule of successive depths and the wait
/// between waves. The initiator launches depth `depths[0]`, waits
/// `wave_timeout`, and if unsatisfied relaunches with the next depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterativeDeepening {
    /// Strictly increasing depth schedule (e.g. `[1, 2, 4]`).
    pub depths: Vec<u8>,
    /// Time to wait for results between waves.
    pub wave_timeout: SimDuration,
}

impl IterativeDeepening {
    /// Build a schedule; depths must be non-empty and strictly increasing.
    ///
    /// # Panics
    /// Panics on an empty or non-increasing schedule.
    pub fn new(depths: Vec<u8>, wave_timeout: SimDuration) -> Self {
        assert!(!depths.is_empty(), "empty deepening schedule");
        assert!(
            depths.windows(2).all(|w| w[0] < w[1]),
            "depth schedule must strictly increase: {depths:?}"
        );
        IterativeDeepening {
            depths,
            wave_timeout,
        }
    }

    /// Depth of wave `i`, if the schedule has one.
    pub fn depth(&self, wave: usize) -> Option<u8> {
        self.depths.get(wave).copied()
    }

    /// Number of waves.
    pub fn waves(&self) -> usize {
        self.depths.len()
    }

    /// The deepest wave (equivalent plain-BFS depth).
    pub fn max_depth(&self) -> u8 {
        *self.depths.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::CumulativeBenefit;
    use crate::stats_store::ReplyObservation;
    use ddr_net::BandwidthClass;
    use ddr_sim::SimTime;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn neighbors() -> Vec<NodeId> {
        vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
    }

    fn stats_with_benefits(pairs: &[(u32, f64)]) -> StatsStore {
        let mut s = StatsStore::new();
        for &(n, b) in pairs {
            s.record_reply(ReplyObservation {
                from: NodeId(n),
                bandwidth: Some(BandwidthClass::Cable),
                score: b,
                latency_ms: 100.0,
                at: SimTime::ZERO,
            });
        }
        s
    }

    #[test]
    fn flood_selects_all_but_excluded() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = StatsStore::new();
        let sel = ForwardSelection::All.select(
            &neighbors(),
            Some(NodeId(2)),
            &s,
            &CumulativeBenefit,
            &mut rng,
        );
        assert_eq!(sel, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn random_k_bounds_count_and_excludes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = StatsStore::new();
        for _ in 0..50 {
            let sel = ForwardSelection::RandomK(2).select(
                &neighbors(),
                Some(NodeId(1)),
                &s,
                &CumulativeBenefit,
                &mut rng,
            );
            assert_eq!(sel.len(), 2);
            assert!(!sel.contains(&NodeId(1)));
        }
    }

    #[test]
    fn random_k_larger_than_pool_returns_all() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = StatsStore::new();
        let sel = ForwardSelection::RandomK(10).select(
            &neighbors(),
            None,
            &s,
            &CumulativeBenefit,
            &mut rng,
        );
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn directed_bft_picks_highest_benefit() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = stats_with_benefits(&[(1, 0.5), (2, 9.0), (3, 3.0)]);
        let sel = ForwardSelection::TopKBenefit(2).select(
            &neighbors(),
            None,
            &s,
            &CumulativeBenefit,
            &mut rng,
        );
        assert_eq!(sel, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn directed_bft_ties_break_by_id() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = StatsStore::new(); // everyone scores 0
        let sel = ForwardSelection::TopKBenefit(2).select(
            &neighbors(),
            None,
            &s,
            &CumulativeBenefit,
            &mut rng,
        );
        assert_eq!(sel, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn labels() {
        assert_eq!(ForwardSelection::All.label(), "flood");
        assert_eq!(ForwardSelection::RandomK(3).label(), "random-3");
        assert_eq!(ForwardSelection::TopKBenefit(2).label(), "directed-bft-2");
    }

    #[test]
    fn termination_ttl() {
        assert_eq!(TerminationPolicy::hops(4).initial_ttl(), 4);
    }

    #[test]
    fn deepening_schedule() {
        let id = IterativeDeepening::new(vec![1, 2, 4], SimDuration::from_secs(2));
        assert_eq!(id.waves(), 3);
        assert_eq!(id.depth(0), Some(1));
        assert_eq!(id.depth(2), Some(4));
        assert_eq!(id.depth(3), None);
        assert_eq!(id.max_depth(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn deepening_rejects_non_increasing() {
        let _ = IterativeDeepening::new(vec![2, 2], SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn deepening_rejects_empty() {
        let _ = IterativeDeepening::new(vec![], SimDuration::from_secs(1));
    }
}
