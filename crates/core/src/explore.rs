//! Exploration policies (paper §3.3, Algo 2).
//!
//! "Whereas search concerns the retrieval of actual content, the goal of
//! exploration is to identify beneficial nodes that may become neighbors."
//! Exploration *queries about* collections of data without fetching; the
//! replies carry "statistics and summarized information" which are folded
//! into the [`crate::StatsStore`].
//!
//! This module implements the two decision points the paper identifies:
//! when exploration is **triggered** and **what** is probed. The music
//! case study needs neither (its search doubles as exploration — "the
//! absence of a central repository and directory information enforces an
//! extensive search process and there is no need for a separate
//! exploration step"), but the web-cache case study and the ablation
//! benches exercise both.

use ddr_sim::{NodeId, SimDuration, SimTime};

/// Events that trigger an exploration round ("the choice of events is very
/// important since it significantly affects performance").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplorationTrigger {
    /// Fixed period ("there should be a correlation between the
    /// exploration frequency and the frequency with which repositories
    /// change their contents").
    Periodic(SimDuration),
    /// After every `n` local requests (request-count clock rather than
    /// wall clock, matching the reconfiguration-threshold style of §4.3).
    EveryNRequests(u32),
    /// When a neighbor disappears (the Gnutella Ping re-join behaviour:
    /// "nodes issue a dummy query … when some of their neighbors abandon
    /// them").
    OnNeighborLoss,
}

/// Tracks trigger state for one node and answers "should I explore now?".
#[derive(Debug, Clone)]
pub struct ExplorationPlanner {
    trigger: ExplorationTrigger,
    last_fired: SimTime,
    requests_since: u32,
    pending_loss: bool,
}

impl ExplorationPlanner {
    /// A planner with the given trigger, anchored at t = 0.
    pub fn new(trigger: ExplorationTrigger) -> Self {
        ExplorationPlanner {
            trigger,
            last_fired: SimTime::ZERO,
            requests_since: 0,
            pending_loss: false,
        }
    }

    /// The configured trigger.
    pub fn trigger(&self) -> ExplorationTrigger {
        self.trigger
    }

    /// Note a local request (for request-count triggers).
    pub fn on_request(&mut self) {
        self.requests_since = self.requests_since.saturating_add(1);
    }

    /// Note a neighbor loss (for loss triggers).
    pub fn on_neighbor_loss(&mut self) {
        self.pending_loss = true;
    }

    /// Whether an exploration round should fire at `now`; firing resets
    /// the trigger state.
    pub fn should_fire(&mut self, now: SimTime) -> bool {
        let fire = match self.trigger {
            ExplorationTrigger::Periodic(period) => now.saturating_since(self.last_fired) >= period,
            ExplorationTrigger::EveryNRequests(n) => self.requests_since >= n,
            ExplorationTrigger::OnNeighborLoss => self.pending_loss,
        };
        if fire {
            self.last_fired = now;
            self.requests_since = 0;
            self.pending_loss = false;
        }
        fire
    }
}

/// What an exploration probe asks about (Algo 2: "select set of data items
/// to query for").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeContent {
    /// A dummy ping (the Gnutella Ping-Pong protocol): discovers liveness
    /// and bandwidth only.
    Ping,
    /// Ask whether the probed node stores specific items (summary of the
    /// prober's hot set) — web-cache digests style.
    Items(Vec<ddr_sim::ItemId>),
}

/// A planned exploration round: whom to probe and what to ask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorationRound {
    /// Probe targets (outgoing neighbors; they propagate further while
    /// the terminating condition holds).
    pub targets: Vec<NodeId>,
    /// Probe content.
    pub content: ProbeContent,
    /// Hop limit for probe propagation.
    pub max_hops: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_fires_after_period() {
        let mut p =
            ExplorationPlanner::new(ExplorationTrigger::Periodic(SimDuration::from_secs(10)));
        assert!(!p.should_fire(SimTime::from_secs(5)));
        assert!(p.should_fire(SimTime::from_secs(10)));
        // reset: needs another full period
        assert!(!p.should_fire(SimTime::from_secs(15)));
        assert!(p.should_fire(SimTime::from_secs(20)));
    }

    #[test]
    fn request_count_fires_every_n() {
        let mut p = ExplorationPlanner::new(ExplorationTrigger::EveryNRequests(3));
        for _ in 0..2 {
            p.on_request();
            assert!(!p.should_fire(SimTime::ZERO));
        }
        p.on_request();
        assert!(p.should_fire(SimTime::ZERO));
        assert!(!p.should_fire(SimTime::ZERO), "counter must reset");
    }

    #[test]
    fn neighbor_loss_fires_once() {
        let mut p = ExplorationPlanner::new(ExplorationTrigger::OnNeighborLoss);
        assert!(!p.should_fire(SimTime::ZERO));
        p.on_neighbor_loss();
        assert!(p.should_fire(SimTime::from_secs(1)));
        assert!(!p.should_fire(SimTime::from_secs(2)));
    }

    #[test]
    fn multiple_losses_coalesce() {
        let mut p = ExplorationPlanner::new(ExplorationTrigger::OnNeighborLoss);
        p.on_neighbor_loss();
        p.on_neighbor_loss();
        assert!(p.should_fire(SimTime::ZERO));
        assert!(!p.should_fire(SimTime::ZERO));
    }

    #[test]
    fn probe_content_variants() {
        let ping = ProbeContent::Ping;
        let items = ProbeContent::Items(vec![ddr_sim::ItemId(1), ddr_sim::ItemId(2)]);
        assert_ne!(ping, items);
    }
}
