//! # ddr-core — the general framework for searching distributed data repositories
//!
//! This crate is the paper's primary contribution (Bakiras, Kalnis,
//! Loukopoulos & Ng, IPDPS 2003), implemented as a library of *policy
//! components* that case-study simulators compose:
//!
//! | Paper element | Module |
//! |---|---|
//! | §3.2 Search (Algo 1): forward-target selection, terminating conditions | [`search`] |
//! | §3.3 Exploration (Algo 2): triggers and probe selection | [`explore`] |
//! | §3.4 Neighbor update (Algo 3, asymmetric) | [`update`] |
//! | §3.4 Neighbor update (Algo 4, symmetric invitation/eviction) | [`update`] |
//! | Benefit functions (web-cache latency, music `B/R`, OLAP processing time) | [`benefit`] |
//! | Per-node statistics "for both the neighboring and the non-neighboring nodes that were encountered" | [`stats_store`] |
//! | "each node keeps a list of recent messages" (duplicate suppression) | [`dup_cache`] |
//! | §2 orthogonal techniques (Yang & Garcia-Molina): iterative deepening, directed BFT, local indices | [`search`], [`local_index`] |
//! | Framework runtime: node plumbing shared by every simulator (membership, per-node bundle, reconfig clock, observer sink) | [`runtime`] |
//!
//! The components are **pure decision logic** — they never touch the event
//! queue. A simulator (see `ddr-gnutella`, `ddr-webcache`) owns message
//! delivery and timing, and calls into this crate to decide *where to
//! forward*, *when to stop*, *whom to invite* and *whom to evict*. That
//! split keeps the framework reusable across the paper's very different
//! instantiations (music sharing, web caching, P2P OLAP) and makes every
//! policy unit-testable without a simulation harness.

pub mod benefit;
pub mod dup_cache;
pub mod explore;
pub mod local_index;
pub mod query;
pub mod runtime;
pub mod search;
pub mod stats_store;
pub mod summary;
pub mod update;

pub use benefit::{
    BenefitFunction, CountBenefit, CumulativeBenefit, LatencyAwareBenefit, ResultScore,
};
pub use dup_cache::DupCache;
pub use explore::{ExplorationPlanner, ExplorationTrigger};
pub use local_index::LocalIndex;
pub use query::{QueryDescriptor, SearchOutcome};
pub use runtime::{
    Clock, Membership, NodeBehavior, NodeRuntime, NullObserver, ReconfigClock, SimObserver,
    SimTransport, Transport,
};
pub use search::{ForwardSelection, IterativeDeepening, TerminationPolicy};
pub use stats_store::{NodeStats, StatsStore};
pub use summary::CategorySummary;
pub use update::{
    plan_asymmetric_update, InvitationContext, InvitationDecision, InvitationPolicy, UpdatePlan,
};
