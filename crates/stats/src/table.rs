//! Paper-style result tables: aligned plain text for terminals plus CSV
//! export, so each experiment binary prints the same rows the paper plots.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-oriented table.
///
/// ```
/// use ddr_stats::Table;
///
/// let mut t = Table::new("demo", &["hour", "hits"]);
/// t.row(vec!["12".into(), "2301".into()]);
/// assert!(t.render().contains("2301"));
/// assert!(t.to_csv().starts_with("hour,hits\n"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the cell count must match the header count.
    ///
    /// # Panics
    /// Panics on arity mismatch — a malformed results table is a bug.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as aligned plain text (right-aligned numeric-looking cells,
    /// left-aligned otherwise).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if looks_numeric(c) {
                        format!("{c:>width$}", width = widths[i])
                    } else {
                        format!("{c:<width$}", width = widths[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes around cells containing commas
    /// or quotes; embedded quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

fn looks_numeric(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | '%' | 'e' | 'E' | '_'))
}

/// Format a float with `digits` decimal places (table-cell helper).
pub fn fnum(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["hour", "hits"]);
        t.row(vec!["12".into(), "2301".into()]);
        t.row(vec!["13".into(), "5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("hour  hits"));
        // numeric cells right-aligned: " 5" not "5 "
        assert!(s.contains("  13     5"), "got:\n{s}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_headers_first_line() {
        let t = Table::new("x", &["p", "q"]);
        assert!(t.to_csv().starts_with("p,q\n"));
    }

    #[test]
    fn fnum_rounds() {
        assert_eq!(fnum(12.345, 2), "12.35");
        assert_eq!(fnum(2.0, 0), "2");
    }

    #[test]
    fn numeric_detection() {
        assert!(looks_numeric("123"));
        assert!(looks_numeric("-1.5e3"));
        assert!(looks_numeric("50%"));
        assert!(!looks_numeric("abc"));
        assert!(!looks_numeric(""));
    }
}
