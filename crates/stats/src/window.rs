//! Measurement windows over bucketed series.
//!
//! Every case study reports over the same half-open hour range
//! `[from_hour, to_hour)` — the simulated horizon minus a warm-up prefix.
//! Before this type existed, each report struct re-implemented the
//! window-sum / window-ratio arithmetic by hand; [`MeasurementWindow`]
//! is that arithmetic written once, so domain reports shrink to thin
//! views over their [`BucketSeries`] (mirroring what `RuntimeMetrics`
//! did for the raw counters).

use crate::series::BucketSeries;
use serde::{Deserialize, Serialize};

/// Divide `num` by `den`, returning `0.0` for an empty (zero or negative)
/// denominator instead of `NaN`/`inf`.
///
/// This is the single divide-by-zero guard behind every report-ratio
/// accessor (`hit_ratio`, `origin_ratio`, `peer_share`, …); the guards it
/// replaced were a mix of `x / d.max(1.0)` and explicit `if d == 0.0`
/// branches, which agree whenever the denominator is an event count
/// (always integral), so consolidating on this form is behaviour-
/// preserving for every pinned output.
#[inline]
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The half-open hour range `[from_hour, to_hour)` a run reports over.
///
/// Constructed by the scenario harness from `(warmup_hours, sim_hours)`
/// and embedded in every run report; all report accessors delegate their
/// windowed arithmetic here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementWindow {
    /// First measured hour (inclusive) — the warm-up boundary.
    pub from_hour: u64,
    /// Horizon hour (exclusive).
    pub to_hour: u64,
}

impl MeasurementWindow {
    /// Window over `[from_hour, to_hour)`.
    pub fn new(from_hour: u64, to_hour: u64) -> Self {
        MeasurementWindow { from_hour, to_hour }
    }

    /// Number of measured hours (0 for empty/inverted windows).
    pub fn hours(&self) -> u64 {
        self.to_hour.saturating_sub(self.from_hour)
    }

    /// Sum of `series` over the window.
    pub fn sum(&self, series: &BucketSeries) -> f64 {
        series.window_sum(self.from_hour as usize, self.to_hour as usize)
    }

    /// Mean per measured hour of `series` over the window.
    pub fn mean_per_hour(&self, series: &BucketSeries) -> f64 {
        series.window_mean(self.from_hour as usize, self.to_hour as usize)
    }

    /// Dense per-hour values of `series` over the window.
    pub fn series(&self, series: &BucketSeries) -> Vec<f64> {
        series.window(self.from_hour as usize, self.to_hour as usize)
    }

    /// Windowed `num / den` with the [`safe_ratio`] zero-denominator guard.
    pub fn ratio(&self, num: &BucketSeries, den: &BucketSeries) -> f64 {
        safe_ratio(self.sum(num), self.sum(den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(usize, f64)]) -> BucketSeries {
        let mut s = BucketSeries::new();
        for &(b, v) in values {
            s.add(b, v);
        }
        s
    }

    #[test]
    fn safe_ratio_guards_zero() {
        assert_eq!(safe_ratio(5.0, 2.0), 2.5);
        assert_eq!(safe_ratio(5.0, 0.0), 0.0);
        assert_eq!(safe_ratio(0.0, 0.0), 0.0);
        assert_eq!(safe_ratio(5.0, -1.0), 0.0);
    }

    #[test]
    fn window_excludes_warmup() {
        let s = series(&[(0, 100.0), (2, 10.0), (3, 20.0)]);
        let w = MeasurementWindow::new(2, 4);
        assert_eq!(w.hours(), 2);
        assert_eq!(w.sum(&s), 30.0);
        assert_eq!(w.mean_per_hour(&s), 15.0);
        assert_eq!(w.series(&s), vec![10.0, 20.0]);
    }

    #[test]
    fn ratio_is_windowed_and_guarded() {
        let hits = series(&[(1, 5.0), (2, 10.0)]);
        let queries = series(&[(1, 50.0), (2, 40.0)]);
        let w = MeasurementWindow::new(2, 3);
        assert_eq!(w.ratio(&hits, &queries), 0.25);
        let empty = MeasurementWindow::new(5, 9);
        assert_eq!(empty.ratio(&hits, &queries), 0.0);
    }

    #[test]
    fn degenerate_window_is_safe() {
        let s = series(&[(1, 1.0)]);
        let w = MeasurementWindow::new(4, 4);
        assert_eq!(w.hours(), 0);
        assert_eq!(w.sum(&s), 0.0);
        assert_eq!(w.mean_per_hour(&s), 0.0);
        let inverted = MeasurementWindow::new(4, 2);
        assert_eq!(inverted.hours(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let w = MeasurementWindow::new(2, 96);
        let json = serde_json::to_string(&w).unwrap();
        let back: MeasurementWindow = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
