//! Load-distribution metrics: who does the serving?
//!
//! The paper motivates dynamic reconfiguration partly by imbalance
//! concerns (§2: static configurations make "peers with slow links …
//! the bottleneck" and let relations become "unbalanced, if a peer only
//! requires, but refuses to provide any content"). These helpers quantify
//! imbalance over a per-node load vector: the Gini coefficient and the
//! share carried by the busiest k % of nodes.

/// Gini coefficient of a non-negative load distribution: 0 = perfectly
/// even, → 1 = all load on one node. Empty and all-zero inputs give 0.
///
/// ```
/// assert_eq!(ddr_stats::gini(&[5.0, 5.0, 5.0]), 0.0);
/// assert!(ddr_stats::gini(&[0.0, 0.0, 30.0]) > 0.6);
/// ```
pub fn gini(loads: &[f64]) -> f64 {
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    debug_assert!(loads.iter().all(|&x| x >= 0.0), "negative load");
    let total: f64 = loads.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted = loads.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("loads must not be NaN"));
    // Gini = (2 Σ_i i·x_i) / (n Σ x) − (n+1)/n, with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Fraction of total load carried by the busiest `top_fraction` of nodes
/// (e.g. `0.1` → the top-10 % share). Returns 0 for empty input.
pub fn top_share(loads: &[f64], top_fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&top_fraction));
    if loads.is_empty() {
        return 0.0;
    }
    let total: f64 = loads.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted = loads.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("loads must not be NaN"));
    let k = ((loads.len() as f64 * top_fraction).ceil() as usize).clamp(1, loads.len());
    sorted[..k].iter().sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_even_distribution_is_zero() {
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_of_concentrated_distribution_near_one() {
        let mut loads = vec![0.0; 100];
        loads[0] = 1_000.0;
        let g = gini(&loads);
        assert!(g > 0.95, "got {g}");
    }

    #[test]
    fn gini_known_value() {
        // {1, 3}: Gini = (2·(1·1 + 2·3))/(2·4) − 3/2 = 14/8 − 1.5 = 0.25
        assert!((gini(&[1.0, 3.0]) - 0.25).abs() < 1e-12);
        // order must not matter
        assert!((gini(&[3.0, 1.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gini_monotone_under_concentration() {
        let even = gini(&[4.0, 4.0, 4.0, 4.0]);
        let mild = gini(&[2.0, 3.0, 5.0, 6.0]);
        let harsh = gini(&[0.0, 1.0, 1.0, 14.0]);
        assert!(even < mild && mild < harsh);
    }

    #[test]
    fn top_share_basics() {
        let loads = [10.0, 5.0, 3.0, 2.0];
        // top 25 % = busiest node = 10/20
        assert!((top_share(&loads, 0.25) - 0.5).abs() < 1e-12);
        // top 100 % = everything
        assert!((top_share(&loads, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(top_share(&[], 0.5), 0.0);
        assert_eq!(top_share(&[0.0, 0.0], 0.5), 0.0);
    }

    #[test]
    fn top_share_always_at_least_proportional() {
        // The busiest k % always carry ≥ k % of the load.
        let loads: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        for f in [0.1, 0.2, 0.5] {
            assert!(top_share(&loads, f) >= f - 1e-12);
        }
    }
}
