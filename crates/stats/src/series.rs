//! Bucketed time series (the paper's per-hour reporting).

use serde::{Deserialize, Serialize};

/// A series of non-negative counts accumulated into integer buckets
/// (bucket = simulated hour in the experiments). Buckets grow on demand.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BucketSeries {
    buckets: Vec<f64>,
}

impl BucketSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sized series (`n` zeroed buckets).
    pub fn with_buckets(n: usize) -> Self {
        BucketSeries {
            buckets: vec![0.0; n],
        }
    }

    /// Add `amount` to `bucket`, growing as needed.
    pub fn add(&mut self, bucket: usize, amount: f64) {
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0.0);
        }
        self.buckets[bucket] += amount;
    }

    /// Increment `bucket` by one.
    pub fn incr(&mut self, bucket: usize) {
        self.add(bucket, 1.0);
    }

    /// Value of `bucket` (0 for untouched/out-of-range buckets).
    pub fn get(&self, bucket: usize) -> f64 {
        self.buckets.get(bucket).copied().unwrap_or(0.0)
    }

    /// Number of allocated buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether no bucket was ever touched.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Sum over `[from, to)`, treating missing buckets as zero.
    pub fn window_sum(&self, from: usize, to: usize) -> f64 {
        (from..to).map(|b| self.get(b)).sum()
    }

    /// Mean over `[from, to)`.
    pub fn window_mean(&self, from: usize, to: usize) -> f64 {
        if to <= from {
            return 0.0;
        }
        self.window_sum(from, to) / (to - from) as f64
    }

    /// Total across all buckets.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// The values of `[from, to)` as a dense vector.
    pub fn window(&self, from: usize, to: usize) -> Vec<f64> {
        (from..to).map(|b| self.get(b)).collect()
    }

    /// Merge another series bucket-wise (for combining per-thread shards).
    pub fn merge(&mut self, other: &BucketSeries) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0.0);
        }
        for (b, v) in other.buckets.iter().enumerate() {
            self.buckets[b] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_demand() {
        let mut s = BucketSeries::new();
        s.incr(5);
        assert_eq!(s.len(), 6);
        assert_eq!(s.get(5), 1.0);
        assert_eq!(s.get(4), 0.0);
        assert_eq!(s.get(100), 0.0);
    }

    #[test]
    fn window_operations() {
        let mut s = BucketSeries::new();
        for h in 0..10 {
            s.add(h, h as f64);
        }
        assert_eq!(s.window_sum(2, 5), 2.0 + 3.0 + 4.0);
        assert_eq!(s.window_mean(2, 5), 3.0);
        assert_eq!(s.window_mean(5, 5), 0.0);
        assert_eq!(s.total(), 45.0);
        assert_eq!(s.window(8, 12), vec![8.0, 9.0, 0.0, 0.0]);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = BucketSeries::new();
        a.add(0, 1.0);
        a.add(2, 2.0);
        let mut b = BucketSeries::new();
        b.add(2, 3.0);
        b.add(4, 5.0);
        a.merge(&b);
        assert_eq!(a.get(0), 1.0);
        assert_eq!(a.get(2), 5.0);
        assert_eq!(a.get(4), 5.0);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = BucketSeries::new();
        s.add(1, 2.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: BucketSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
