//! # ddr-stats — metrics toolkit for the experiment harness
//!
//! The paper reports three kinds of measurements:
//!
//! * **hourly series** — "the total number of queries that were satisfied
//!   during each one-hour interval" (Figs 1–2) → [`BucketSeries`];
//! * **scalar summaries with dispersion** — "the average delay observed
//!   from the moment a query is issued … until the first result arrives"
//!   (Fig 3a) → [`RunningStats`] / [`Histogram`];
//! * **sweep tables** — total hits vs a parameter (Fig 3b) → [`Table`].
//!
//! Everything here is simulation-agnostic (no `ddr-sim` dependency): time
//! enters as a plain bucket index, so the same toolkit serves unit tests,
//! case studies and the bench harness. All types serialise with `serde`
//! for CSV/JSON export.

pub mod histogram;
pub mod load;
pub mod recorder;
pub mod series;
pub mod table;
pub mod window;

pub use histogram::{Histogram, RunningStats};
pub use load::{gini, top_share};
pub use recorder::RuntimeMetrics;
pub use series::BucketSeries;
pub use table::Table;
pub use window::{safe_ratio, MeasurementWindow};
