//! Shared framework-level metrics recorder.
//!
//! Every case-study world used to carry a bespoke metrics struct that
//! re-declared the same framework counters (queries, hits, messages,
//! reconfiguration updates, …) next to its domain-specific ones. The
//! [`RuntimeMetrics`] recorder factors that common core out: the worlds
//! now embed one shared recorder and keep only their domain fields, and
//! the `ddr-core` observer trait (`SimObserver`) is implemented directly
//! on this type so the framework runtime can report into it without
//! knowing which case study is running.
//!
//! The field vocabulary follows the paper's reporting: hourly series for
//! the Fig 1–2 curves, a latency accumulator for Fig 3(a), and plain
//! counters for the reconfiguration/exploration machinery.

use crate::{BucketSeries, RunningStats};
use serde::Serialize;

/// Framework counters common to every case-study simulation.
///
/// * hourly [`BucketSeries`] for demand (`queries`), successful remote
///   answers (`hits`) and network cost (`messages`);
/// * a [`RunningStats`] accumulator for first-result latency in
///   milliseconds;
/// * scalar counters for the adaptive machinery: `explorations`
///   (exploration waves fired), `updates` (reconfigurations executed)
///   and `edges_changed` (neighbour-set churn caused by those updates).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RuntimeMetrics {
    /// Queries (or requests) issued, per hour.
    pub queries: BucketSeries,
    /// Queries satisfied remotely (hits / neighbour hits / peer chunks),
    /// per hour.
    pub hits: BucketSeries,
    /// Protocol messages sent, per hour.
    pub messages: BucketSeries,
    /// First-result latency in milliseconds.
    pub latency_ms: RunningStats,
    /// Exploration waves fired beyond the normal search horizon.
    pub explorations: u64,
    /// Reconfigurations (neighbour-list updates) executed.
    pub updates: u64,
    /// Individual neighbour-edge changes applied by reconfigurations.
    pub edges_changed: u64,
}

impl RuntimeMetrics {
    /// A zeroed recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one issued query in `hour`.
    pub fn record_query(&mut self, hour: usize) {
        self.queries.incr(hour);
    }

    /// Record one remote hit in `hour`.
    pub fn record_hit(&mut self, hour: usize) {
        self.hits.incr(hour);
    }

    /// Record `n` protocol messages in `hour`.
    pub fn record_messages(&mut self, hour: usize, n: f64) {
        self.messages.add(hour, n);
    }

    /// Record one first-result latency observation.
    pub fn record_latency_ms(&mut self, ms: f64) {
        self.latency_ms.record(ms);
    }

    /// Record one exploration wave.
    pub fn record_exploration(&mut self) {
        self.explorations += 1;
    }

    /// Record one executed reconfiguration.
    pub fn record_update(&mut self) {
        self.updates += 1;
    }

    /// Record `n` neighbour-edge changes.
    pub fn record_edges_changed(&mut self, n: u64) {
        self.edges_changed += n;
    }

    /// Merge another recorder (parallel-shard combination).
    pub fn merge(&mut self, other: &RuntimeMetrics) {
        self.queries.merge(&other.queries);
        self.hits.merge(&other.hits);
        self.messages.merge(&other.messages);
        self.latency_ms.merge(&other.latency_ms);
        self.explorations += other.explorations;
        self.updates += other.updates;
        self.edges_changed += other.edges_changed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_fields() {
        let mut m = RuntimeMetrics::new();
        m.record_query(0);
        m.record_query(1);
        m.record_hit(1);
        m.record_messages(1, 7.0);
        m.record_latency_ms(120.0);
        m.record_exploration();
        m.record_update();
        m.record_edges_changed(3);
        assert_eq!(m.queries.total(), 2.0);
        assert_eq!(m.hits.get(1), 1.0);
        assert_eq!(m.messages.get(1), 7.0);
        assert_eq!(m.latency_ms.count(), 1);
        assert_eq!(m.explorations, 1);
        assert_eq!(m.updates, 1);
        assert_eq!(m.edges_changed, 3);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = RuntimeMetrics::new();
        a.record_hit(0);
        a.record_update();
        let mut b = RuntimeMetrics::new();
        b.record_hit(0);
        b.record_hit(2);
        b.record_latency_ms(10.0);
        b.record_edges_changed(2);
        a.merge(&b);
        assert_eq!(a.hits.total(), 3.0);
        assert_eq!(a.latency_ms.count(), 1);
        assert_eq!(a.updates, 1);
        assert_eq!(a.edges_changed, 2);
    }

    #[test]
    fn serialises() {
        let m = RuntimeMetrics::new();
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"updates\""));
    }
}
