//! Scalar summaries: running moments and fixed-width histograms with
//! percentile queries. Back the Fig 3(a) delay measurements.

use serde::{Deserialize, Serialize};

/// Running mean/variance/min/max over exact component sums.
///
/// Deliberately *not* Welford: the accumulator keeps `(n, Σx, Σx²)`,
/// whose merge is component-wise addition. All samples recorded in this
/// codebase are integer-valued (milliseconds, hop counts), so every
/// partial sum is exactly representable below 2⁵³ and **merging shard
/// accumulators is bit-identical to sequential accumulation in any
/// order** — the property the sharded kernel's report merge relies on.
/// (Welford's `(mean, m2)` carries rounding that depends on visit
/// order, which would break sharded == serial parity.)
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    sum: f64,
    sumsq: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sumsq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            let mean = self.sum / self.n as f64;
            (self.sumsq / self.n as f64 - mean * mean).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator (parallel-sweep / shard combination).
    /// Component-wise sum addition: exact, and therefore bit-identical
    /// to sequential accumulation for integer-valued samples.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.sumsq += other.sumsq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[0, width * bins)`; out-of-range samples go
/// to the overflow bucket. Supports approximate percentiles (bucket upper
/// bound of the first bucket reaching the target rank).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` buckets of `width` each.
    ///
    /// # Panics
    /// Panics if `width <= 0` or `bins == 0`.
    pub fn new(width: f64, bins: usize) -> Self {
        assert!(width > 0.0 && bins > 0);
        Histogram {
            width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Record a sample (negatives clamp to bucket 0).
    pub fn record(&mut self, x: f64) {
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (0 ≤ q ≤ 1): upper bound of the bucket
    /// containing the rank, `inf` if the rank falls into overflow, NaN when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return f64::NAN;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (i + 1) as f64 * self.width;
            }
        }
        f64::INFINITY
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> f64 {
        self.width
    }

    /// Midpoint-weighted mean estimate over the in-range buckets
    /// (overflow samples are excluded — the estimate is a lower bound
    /// when overflow is non-empty). NaN when no in-range samples exist.
    pub fn mean_estimate(&self) -> f64 {
        let in_range = self.total - self.overflow;
        if in_range == 0 {
            return f64::NAN;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 + 0.5) * self.width)
            .sum();
        sum / in_range as f64
    }

    /// Merge another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics on mismatched width or bin count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(100.0, 20); // 0..2000 in 100ms buckets
        for ms in [50.0, 150.0, 150.0, 350.0] {
            h.record(ms);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.quantile(0.5), 200.0); // 2nd sample in bucket [100,200)
        assert_eq!(h.quantile(1.0), 400.0);
    }

    #[test]
    fn histogram_mean_estimate_uses_bucket_midpoints() {
        let mut h = Histogram::new(100.0, 20);
        h.record(10.0); // bucket [0,100), midpoint 50
        h.record(199.0); // bucket [100,200), midpoint 150
        assert!((h.mean_estimate() - 100.0).abs() < 1e-12);
        h.record(1e9); // overflow is excluded from the estimate
        assert!((h.mean_estimate() - 100.0).abs() < 1e-12);
        let empty = Histogram::new(1.0, 1);
        assert!(empty.mean_estimate().is_nan());
    }

    #[test]
    fn histogram_overflow() {
        let mut h = Histogram::new(10.0, 2);
        h.record(1_000.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn histogram_negative_clamps() {
        let mut h = Histogram::new(10.0, 2);
        h.record(-5.0);
        assert_eq!(h.buckets()[0], 1);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(10.0, 4);
        let mut b = Histogram::new(10.0, 4);
        a.record(5.0);
        b.record(15.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets(), &[1, 1, 0, 0]);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn histogram_merge_geometry_checked() {
        let mut a = Histogram::new(10.0, 4);
        let b = Histogram::new(20.0, 4);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_quantile_nan() {
        let h = Histogram::new(1.0, 1);
        assert!(h.quantile(0.5).is_nan());
    }
}
