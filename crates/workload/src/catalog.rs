//! The song catalog: 200 000 distinct songs equally divided into 50
//! categories, with Zipf(0.9) within-category popularity (paper §4.2).
//!
//! Items are numbered so category `c` owns the contiguous id range
//! `[c * per_cat, (c+1) * per_cat)` and the *rank within the category* is
//! the offset: `ItemId(c * per_cat + rank)` where rank 0 is the category's
//! most popular song. This makes rank↔id conversion free.

use crate::dist::Zipf;
use ddr_sim::ItemId;
use rand::Rng;

/// Index of a music category (genre).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CategoryId(pub u16);

impl CategoryId {
    /// As a dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// The immutable catalog shared by the whole simulation.
#[derive(Debug, Clone)]
pub struct Catalog {
    songs: u32,
    categories: u16,
    per_category: u32,
    /// Popularity of songs within a category (all categories share the
    /// same distribution shape, per the paper).
    song_zipf: Zipf,
    /// Popularity of categories for user-assignment (Zipf over categories).
    category_zipf: Zipf,
}

impl Catalog {
    /// Build a catalog; `songs` must divide evenly into `categories`
    /// ("these songs are equally divided into 50 categories").
    ///
    /// # Panics
    /// Panics on zero sizes or uneven division.
    pub fn new(songs: u32, categories: u16, theta: f64) -> Self {
        assert!(songs > 0 && categories > 0);
        assert_eq!(
            songs % categories as u32,
            0,
            "songs ({songs}) must divide evenly into categories ({categories})"
        );
        let per_category = songs / categories as u32;
        Catalog {
            songs,
            categories,
            per_category,
            song_zipf: Zipf::new(per_category as usize, theta),
            category_zipf: Zipf::new(categories as usize, theta),
        }
    }

    /// The paper's catalog: 200 000 songs, 50 categories, θ = 0.9.
    pub fn paper() -> Self {
        Catalog::new(200_000, 50, 0.9)
    }

    /// Total number of songs.
    pub fn songs(&self) -> u32 {
        self.songs
    }

    /// Number of categories.
    pub fn categories(&self) -> u16 {
        self.categories
    }

    /// Songs per category.
    pub fn per_category(&self) -> u32 {
        self.per_category
    }

    /// The within-category popularity distribution.
    pub fn song_popularity(&self) -> &Zipf {
        &self.song_zipf
    }

    /// The category-popularity distribution (for assigning users).
    pub fn category_popularity(&self) -> &Zipf {
        &self.category_zipf
    }

    /// Category owning `item`.
    #[inline]
    pub fn category_of(&self, item: ItemId) -> CategoryId {
        debug_assert!(item.0 < self.songs);
        CategoryId((item.0 / self.per_category) as u16)
    }

    /// Popularity rank of `item` within its category (0 = most popular).
    #[inline]
    pub fn rank_of(&self, item: ItemId) -> u32 {
        item.0 % self.per_category
    }

    /// The item at `rank` within `category`.
    #[inline]
    pub fn item_at(&self, category: CategoryId, rank: u32) -> ItemId {
        debug_assert!(category.0 < self.categories);
        debug_assert!(rank < self.per_category);
        ItemId(category.0 as u32 * self.per_category + rank)
    }

    /// Sample a song from `category` by popularity.
    pub fn sample_song<R: Rng + ?Sized>(&self, rng: &mut R, category: CategoryId) -> ItemId {
        let rank = self.song_zipf.sample(rng) as u32;
        self.item_at(category, rank)
    }

    /// Sample a category by popularity (user-to-category assignment).
    pub fn sample_category<R: Rng + ?Sized>(&self, rng: &mut R) -> CategoryId {
        CategoryId(self.category_zipf.sample(rng) as u16)
    }

    /// Sample `k` distinct songs from `category` by popularity.
    pub fn sample_distinct_songs<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        category: CategoryId,
        k: usize,
    ) -> Vec<ItemId> {
        self.song_zipf
            .sample_distinct(rng, k)
            .into_iter()
            .map(|rank| self.item_at(category, rank as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_catalog_dimensions() {
        let c = Catalog::paper();
        assert_eq!(c.songs(), 200_000);
        assert_eq!(c.categories(), 50);
        assert_eq!(c.per_category(), 4_000);
    }

    #[test]
    fn id_rank_roundtrip() {
        let c = Catalog::new(1_000, 10, 0.9);
        for cat in 0..10u16 {
            for rank in [0u32, 1, 50, 99] {
                let item = c.item_at(CategoryId(cat), rank);
                assert_eq!(c.category_of(item), CategoryId(cat));
                assert_eq!(c.rank_of(item), rank);
            }
        }
    }

    #[test]
    fn category_ranges_are_contiguous_and_disjoint() {
        let c = Catalog::new(100, 4, 0.9);
        let mut seen = std::collections::HashSet::new();
        for cat in 0..4u16 {
            for rank in 0..25u32 {
                assert!(seen.insert(c.item_at(CategoryId(cat), rank)));
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_division_panics() {
        let _ = Catalog::new(101, 10, 0.9);
    }

    #[test]
    fn sampled_songs_stay_in_category() {
        let c = Catalog::paper();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let cat = c.sample_category(&mut rng);
            let song = c.sample_song(&mut rng, cat);
            assert_eq!(c.category_of(song), cat);
        }
    }

    #[test]
    fn popular_songs_sampled_more() {
        let c = Catalog::paper();
        let mut rng = SmallRng::seed_from_u64(2);
        let cat = CategoryId(3);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            let song = c.sample_song(&mut rng, cat);
            if c.rank_of(song) < 40 {
                head += 1;
            }
        }
        // With θ=0.9 over 4 000 ranks the top-1 % of ranks carries far more
        // than 1 % of the mass.
        assert!(head as f64 / n as f64 > 0.05, "head share {head}/{n}");
    }

    #[test]
    fn distinct_songs_unique_and_in_category() {
        let c = Catalog::paper();
        let mut rng = SmallRng::seed_from_u64(3);
        let songs = c.sample_distinct_songs(&mut rng, CategoryId(7), 100);
        assert_eq!(songs.len(), 100);
        let set: std::collections::HashSet<_> = songs.iter().collect();
        assert_eq!(set.len(), 100);
        for &s in &songs {
            assert_eq!(c.category_of(s), CategoryId(7));
        }
    }
}
