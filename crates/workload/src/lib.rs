//! # ddr-workload — synthetic workload for the music-sharing case study
//!
//! Implements the paper's synthetic dataset (§4.2) from scratch:
//!
//! * a search space of **200 000 distinct songs** equally divided into
//!   **50 categories** (music genres);
//! * **Zipf(θ = 0.9)** popularity of songs *within* each category, and
//!   Zipf(θ = 0.9) assignment of *users* to favourite categories;
//! * per-user libraries of **Gaussian(μ = 200, σ = 50)** songs, 50 % drawn
//!   from the favourite category and 10 % from each of 5 other random
//!   categories, selected by within-category popularity;
//! * **exponential(mean 3 h)** online/offline churn, giving ≈ half the
//!   population online in steady state;
//! * queries whose category follows the user's preference mix (50 %
//!   favourite) and whose song follows within-category popularity.
//!
//! Distribution samplers (Zipf via precomputed CDF + binary search,
//! truncated Gaussian via Box–Muller, exponential via inverse CDF) are
//! implemented locally — see DESIGN.md §6 for the dependency rationale.

pub mod catalog;
pub mod churn;
pub mod config;
pub mod dist;
pub mod profile;
pub mod query;

pub use catalog::{Catalog, CategoryId};
pub use churn::ChurnProcess;
pub use config::{ChurnModel, FlashCrowd, WorkloadConfig};
pub use dist::{Exponential, Pareto, TruncatedGaussian, Zipf};
pub use profile::{generate_profiles, UserProfile};
pub use query::QueryGenerator;
