//! Distribution samplers used by the synthetic workload.
//!
//! All samplers take `&mut impl Rng` so callers control stream identity
//! (see `ddr_sim::RngFactory`); none keep mutable state of their own, so a
//! single instance can be shared across threads in parameter sweeps.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent θ:
/// `P(rank = k) ∝ 1 / (k+1)^θ`.
///
/// Sampling is inverse-CDF via binary search on a precomputed table —
/// O(n) construction, O(log n) per sample, exact (no rejection).
///
/// ```
/// use ddr_workload::Zipf;
/// use ddr_sim::RngFactory;
///
/// let z = Zipf::new(1_000, 0.9);
/// assert!(z.pmf(0) > z.pmf(100), "head ranks carry more mass");
/// let mut rng = RngFactory::new(1).stream("demo", 0);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// cdf[k] = P(rank <= k); cdf[n-1] == 1.0 (up to fp rounding, forced).
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Build a Zipf(θ) sampler over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or θ is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(theta.is_finite() && theta >= 0.0, "invalid theta: {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Defend the binary search against fp rounding at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, theta }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// Draw `k` *distinct* ranks (popularity-weighted sampling without
    /// replacement, by rejection). `k` must not exceed the domain size.
    ///
    /// Rejection is efficient here because the workload draws ≪ n ranks
    /// per category (≈ 100 of 4 000); a safety valve falls back to filling
    /// with the lowest unused ranks if rejection stalls (possible only for
    /// extreme θ where the head dominates).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(
            k <= self.len(),
            "cannot draw {k} distinct of {}",
            self.len()
        );
        let mut chosen = ddr_sim::hash::fast_set();
        let mut out = Vec::with_capacity(k);
        let mut stall = 0usize;
        let stall_limit = 50 * k.max(8);
        while out.len() < k {
            let r = self.sample(rng);
            if chosen.insert(r) {
                out.push(r);
                stall = 0;
            } else {
                stall += 1;
                if stall > stall_limit {
                    // Fill deterministically with the most popular unused
                    // ranks; hit only under degenerate θ.
                    for r in 0..self.len() {
                        if out.len() == k {
                            break;
                        }
                        if chosen.insert(r) {
                            out.push(r);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Gaussian(μ, σ) truncated to `[lo, hi]` by clamping (the workload uses
/// it for library sizes, where the tails are irrelevant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGaussian {
    pub mean: f64,
    pub std: f64,
    pub lo: f64,
    pub hi: f64,
}

impl TruncatedGaussian {
    /// Construct; panics if the interval is empty or σ < 0.
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        assert!(std >= 0.0, "negative std");
        TruncatedGaussian { mean, std, lo, hi }
    }

    /// One sample (Box–Muller + clamp).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        (self.mean + z * self.std).clamp(self.lo, self.hi)
    }

    /// One sample rounded to the nearest non-negative integer.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng).round().max(0.0) as usize
    }
}

/// One standard-normal sample via Box–Muller (cosine branch). A sibling of
/// `ddr_net::latency::standard_normal`, duplicated rather than shared so the
/// workload and network crates stay independent in the dependency graph.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Exponential distribution with the given mean (inverse-CDF sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Construct from the mean (must be positive and finite).
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        Exponential { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// One sample (non-negative).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u in (0, 1]: avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -self.mean * u.ln()
    }
}

/// Pareto (power-law) distribution with tail exponent `shape` (α) and the
/// given mean — the heavy-tailed alternative to [`Exponential`] for churn
/// session lengths (`ChurnModel::Pareto`). Sampling is inverse-CDF:
/// `x = scale · u^(-1/α)`, so every draw is ≥ `scale` and the survival
/// function is `P(X > x) = (scale / x)^α`.
///
/// Requires `shape > 1` so the mean exists; for `1 < shape ≤ 2` the
/// variance is infinite, which is exactly the regime measured session
/// lengths live in — a few marathon sessions dominate the total online
/// time while the median session is *shorter* than the exponential's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Construct from the desired mean and tail exponent. The scale is
    /// derived as `mean · (shape − 1) / shape` so `E[X] = mean` exactly.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `shape > 1` (both finite).
    pub fn from_mean(mean: f64, shape: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        assert!(
            shape.is_finite() && shape > 1.0,
            "shape must exceed 1 for a finite mean: {shape}"
        );
        Pareto {
            scale: mean * (shape - 1.0) / shape,
            shape,
        }
    }

    /// The configured mean `scale · α / (α − 1)`.
    pub fn mean(&self) -> f64 {
        self.scale * self.shape / (self.shape - 1.0)
    }

    /// The tail exponent α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The minimum value every sample is bounded below by.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The median `scale · 2^(1/α)` — unlike the sample mean, a stable
    /// statistic under the infinite-variance regime, which is what the
    /// seed-sensitivity tests pin.
    pub fn median(&self) -> f64 {
        self.scale * 2f64.powf(1.0 / self.shape)
    }

    /// One sample (always ≥ `scale`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u in (0, 1]: avoids the u = 0 pole.
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * u.powf(-1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_cdf_monotone_and_normalised() {
        let z = Zipf::new(1_000, 0.9);
        let mut prev = 0.0;
        for k in 0..z.len() {
            let c = prev + z.pmf(k);
            assert!(z.pmf(k) > 0.0);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_head_dominates() {
        let z = Zipf::new(4_000, 0.9);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        // rank-0 mass for n=4000, θ=0.9 is a few permil, far above uniform
        assert!(z.pmf(0) > 10.0 / 4_000.0);
    }

    #[test]
    fn zipf_sampling_matches_pmf_roughly() {
        let z = Zipf::new(100, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - z.pmf(0)).abs() < 0.01, "rank0 {f0} vs {}", z.pmf(0));
        // Monotonic-ish on the head
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[50]);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_distinct_has_no_duplicates_and_right_size() {
        let z = Zipf::new(4_000, 0.9);
        let mut rng = SmallRng::seed_from_u64(2);
        let picks = z.sample_distinct(&mut rng, 100);
        assert_eq!(picks.len(), 100);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn zipf_distinct_full_domain() {
        let z = Zipf::new(16, 1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut picks = z.sample_distinct(&mut rng, 16);
        picks.sort_unstable();
        assert_eq!(picks, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_empty_panics() {
        let _ = Zipf::new(0, 0.9);
    }

    #[test]
    fn gaussian_respects_bounds_and_mean() {
        let g = TruncatedGaussian::new(200.0, 50.0, 1.0, 400.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.sample(&mut rng);
            assert!((1.0..=400.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((195.0..205.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gaussian_count_is_nonnegative_integerised() {
        let g = TruncatedGaussian::new(2.0, 5.0, -10.0, 10.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let _c: usize = g.sample_count(&mut rng); // must not panic/underflow
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let e = Exponential::from_mean(3.0 * 3_600.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 100_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        let rel = (mean - e.mean()).abs() / e.mean();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn exponential_nonnegative() {
        let e = Exponential::from_mean(1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid mean")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::from_mean(0.0);
    }

    #[test]
    fn pareto_scale_and_median_follow_from_mean() {
        let p = Pareto::from_mean(3.0, 1.5);
        assert!((p.scale() - 1.0).abs() < 1e-12);
        assert!((p.mean() - 3.0).abs() < 1e-12);
        assert!((p.median() - 2f64.powf(2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn pareto_samples_bounded_below_by_scale() {
        let p = Pareto::from_mean(3.0, 1.5);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) >= p.scale());
        }
    }

    #[test]
    fn pareto_median_converges_despite_infinite_variance() {
        // The sample mean is useless at α = 1.5 (infinite variance); the
        // median is the stable statistic the churn seed-sensitivity test
        // also pins.
        let p = Pareto::from_mean(3.0, 1.5);
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[n / 2];
        let rel = (med - p.median()).abs() / p.median();
        assert!(rel < 0.02, "median {med} vs {}, rel {rel}", p.median());
    }

    #[test]
    fn pareto_is_seed_stable_across_16_seeds() {
        // Seed-sensitivity bounds for the ChurnModel::Pareto draws
        // (EXPERIMENTS.md, "Assertion recalibration"): at shape 1.5 the
        // variance is infinite, so the sample mean wanders and only the
        // median and fixed-threshold tail mass are pinned tightly.
        // Analytic values for mean 3.0 h, shape 1.5: scale = 1.0,
        // median = 2^(2/3) ≈ 1.587, P(X > 9.0) = (1/9)^1.5 ≈ 0.037.
        let p = Pareto::from_mean(3.0, 1.5);
        let n = 50_000;
        for seed in 0..16u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut xs: Vec<f64> = (0..n).map(|_| p.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let tail = xs.iter().filter(|&&x| x > 3.0 * p.mean()).count() as f64 / n as f64;
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let med = xs[n / 2];
            let rel = (med - p.median()).abs() / p.median();
            assert!(rel < 0.03, "seed {seed}: median {med} off by {rel}");
            assert!(
                (0.02..=0.06).contains(&tail),
                "seed {seed}: tail mass {tail} outside [0.02, 0.06]"
            );
            assert!(
                (2.0..=5.0).contains(&mean),
                "seed {seed}: sample mean {mean} outside the (wide) [2, 5] band"
            );
        }
    }

    #[test]
    fn pareto_tail_is_heavier_than_exponential() {
        // Same mean 3.0; P(X > 30) is (1/30)^1.5 ≈ 6e-3 for the Pareto
        // and e^{-10} ≈ 4.5e-5 for the exponential — two orders apart.
        let p = Pareto::from_mean(3.0, 1.5);
        let e = Exponential::from_mean(3.0);
        let mut rng = SmallRng::seed_from_u64(10);
        let n = 200_000;
        let p_tail = (0..n).filter(|_| p.sample(&mut rng) > 30.0).count();
        let e_tail = (0..n).filter(|_| e.sample(&mut rng) > 30.0).count();
        assert!(
            p_tail > 20 * (e_tail + 1),
            "pareto tail {p_tail} vs exponential {e_tail}"
        );
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn pareto_rejects_shape_at_most_one() {
        let _ = Pareto::from_mean(3.0, 1.0);
    }
}
