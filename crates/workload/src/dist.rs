//! Distribution samplers used by the synthetic workload.
//!
//! All samplers take `&mut impl Rng` so callers control stream identity
//! (see `ddr_sim::RngFactory`); none keep mutable state of their own, so a
//! single instance can be shared across threads in parameter sweeps.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent θ:
/// `P(rank = k) ∝ 1 / (k+1)^θ`.
///
/// Sampling is inverse-CDF via binary search on a precomputed table —
/// O(n) construction, O(log n) per sample, exact (no rejection).
///
/// ```
/// use ddr_workload::Zipf;
/// use ddr_sim::RngFactory;
///
/// let z = Zipf::new(1_000, 0.9);
/// assert!(z.pmf(0) > z.pmf(100), "head ranks carry more mass");
/// let mut rng = RngFactory::new(1).stream("demo", 0);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// cdf[k] = P(rank <= k); cdf[n-1] == 1.0 (up to fp rounding, forced).
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Build a Zipf(θ) sampler over `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0` or θ is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(theta.is_finite() && theta >= 0.0, "invalid theta: {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Defend the binary search against fp rounding at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, theta }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u)
    }

    /// Draw `k` *distinct* ranks (popularity-weighted sampling without
    /// replacement, by rejection). `k` must not exceed the domain size.
    ///
    /// Rejection is efficient here because the workload draws ≪ n ranks
    /// per category (≈ 100 of 4 000); a safety valve falls back to filling
    /// with the lowest unused ranks if rejection stalls (possible only for
    /// extreme θ where the head dominates).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(
            k <= self.len(),
            "cannot draw {k} distinct of {}",
            self.len()
        );
        let mut chosen = ddr_sim::hash::fast_set();
        let mut out = Vec::with_capacity(k);
        let mut stall = 0usize;
        let stall_limit = 50 * k.max(8);
        while out.len() < k {
            let r = self.sample(rng);
            if chosen.insert(r) {
                out.push(r);
                stall = 0;
            } else {
                stall += 1;
                if stall > stall_limit {
                    // Fill deterministically with the most popular unused
                    // ranks; hit only under degenerate θ.
                    for r in 0..self.len() {
                        if out.len() == k {
                            break;
                        }
                        if chosen.insert(r) {
                            out.push(r);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Gaussian(μ, σ) truncated to `[lo, hi]` by clamping (the workload uses
/// it for library sizes, where the tails are irrelevant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedGaussian {
    pub mean: f64,
    pub std: f64,
    pub lo: f64,
    pub hi: f64,
}

impl TruncatedGaussian {
    /// Construct; panics if the interval is empty or σ < 0.
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        assert!(std >= 0.0, "negative std");
        TruncatedGaussian { mean, std, lo, hi }
    }

    /// One sample (Box–Muller + clamp).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        (self.mean + z * self.std).clamp(self.lo, self.hi)
    }

    /// One sample rounded to the nearest non-negative integer.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng).round().max(0.0) as usize
    }
}

/// One standard-normal sample via Box–Muller (cosine branch). A sibling of
/// `ddr_net::latency::standard_normal`, duplicated rather than shared so the
/// workload and network crates stay independent in the dependency graph.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Exponential distribution with the given mean (inverse-CDF sampling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Construct from the mean (must be positive and finite).
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        Exponential { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// One sample (non-negative).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u in (0, 1]: avoids ln(0).
        let u: f64 = 1.0 - rng.gen::<f64>();
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_cdf_monotone_and_normalised() {
        let z = Zipf::new(1_000, 0.9);
        let mut prev = 0.0;
        for k in 0..z.len() {
            let c = prev + z.pmf(k);
            assert!(z.pmf(k) > 0.0);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_head_dominates() {
        let z = Zipf::new(4_000, 0.9);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
        // rank-0 mass for n=4000, θ=0.9 is a few permil, far above uniform
        assert!(z.pmf(0) > 10.0 / 4_000.0);
    }

    #[test]
    fn zipf_sampling_matches_pmf_roughly() {
        let z = Zipf::new(100, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - z.pmf(0)).abs() < 0.01, "rank0 {f0} vs {}", z.pmf(0));
        // Monotonic-ish on the head
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[50]);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_distinct_has_no_duplicates_and_right_size() {
        let z = Zipf::new(4_000, 0.9);
        let mut rng = SmallRng::seed_from_u64(2);
        let picks = z.sample_distinct(&mut rng, 100);
        assert_eq!(picks.len(), 100);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn zipf_distinct_full_domain() {
        let z = Zipf::new(16, 1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut picks = z.sample_distinct(&mut rng, 16);
        picks.sort_unstable();
        assert_eq!(picks, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipf_empty_panics() {
        let _ = Zipf::new(0, 0.9);
    }

    #[test]
    fn gaussian_respects_bounds_and_mean() {
        let g = TruncatedGaussian::new(200.0, 50.0, 1.0, 400.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.sample(&mut rng);
            assert!((1.0..=400.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((195.0..205.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gaussian_count_is_nonnegative_integerised() {
        let g = TruncatedGaussian::new(2.0, 5.0, -10.0, 10.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let _c: usize = g.sample_count(&mut rng); // must not panic/underflow
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let e = Exponential::from_mean(3.0 * 3_600.0);
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 100_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        let rel = (mean - e.mean()).abs() / e.mean();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn exponential_nonnegative() {
        let e = Exponential::from_mean(1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid mean")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::from_mean(0.0);
    }
}
