//! Per-user profiles: favourite/secondary categories and music libraries
//! (paper §4.2).
//!
//! "Each user has a favorite category (e.g., rock), and 50% of his songs
//! belong to this category. The other 50% of the songs are selected from 5
//! other random categories (with a 10% contribution from each category).
//! The selection of the individual songs is based on the popularity of the
//! song inside its category. … The assignment of users into categories is
//! also performed according to Zipf's law with parameter θ = 0.9."

use crate::catalog::{Catalog, CategoryId};
use crate::config::WorkloadConfig;
use crate::dist::TruncatedGaussian;
use ddr_sim::{FastHashSet, ItemId, NodeId, RngFactory};
use rand::seq::SliceRandom;
use rand::Rng;

/// Cache-line blocks in the per-profile membership prefilter (see
/// [`UserProfile::has`]): 4 × 512 bits = 2048 bits total.
const FILTER_BLOCKS: usize = 4;
/// Bits per block (one 64-byte cache line).
const BLOCK_BITS: u64 = 512;

/// One 64-byte-aligned filter block. The alignment guarantees a probe
/// never straddles two cache lines: both hash bits of an item live in
/// the same block (a *blocked* Bloom filter), so a membership test
/// touches exactly one line of filter state.
#[derive(Debug, Clone, Copy, Default)]
#[repr(align(64))]
struct FilterBlock([u64; 8]);

/// Stream-free mixer for filter bit positions (splitmix64 finalizer over
/// the item id). Must stay a pure function of the item: the filter is
/// rebuilt from the library alone and never consumes generator state.
#[inline]
fn filter_mix(item: ItemId) -> u64 {
    let mut z = (item.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One user's static profile: preferences plus library contents.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// The user's id.
    pub node: NodeId,
    /// Favourite category (50 % of library and queries).
    pub favorite: CategoryId,
    /// The other categories this user draws from (10 % each).
    pub secondary: Vec<CategoryId>,
    /// Library contents, sorted by id for binary-search membership tests.
    library: Vec<ItemId>,
    /// Two-hash blocked Bloom prefilter over `library`. Almost every
    /// membership probe in a simulation is a miss (a ~200-song library
    /// against a 200 000-song catalog), and the filter answers those
    /// definitively without walking the binary search's cache-missy
    /// probe sequence — touching a single cache line, since both hash
    /// bits of an item fall in one 64-byte block. False positives (~3 %
    /// at ~50 entries per 512-bit block) fall through to the exact
    /// search, so `has` is bit-for-bit unchanged.
    filter: [FilterBlock; FILTER_BLOCKS],
}

impl UserProfile {
    /// Build a profile, deriving the prefilter from the (sorted) library.
    fn from_parts(
        node: NodeId,
        favorite: CategoryId,
        secondary: Vec<CategoryId>,
        library: Vec<ItemId>,
    ) -> Self {
        let mut filter = [FilterBlock::default(); FILTER_BLOCKS];
        for &item in &library {
            let h = filter_mix(item);
            let block = &mut filter[(h >> 60) as usize & (FILTER_BLOCKS - 1)];
            let b1 = h & (BLOCK_BITS - 1);
            let b2 = (h >> 32) & (BLOCK_BITS - 1);
            block.0[(b1 >> 6) as usize] |= 1 << (b1 & 63);
            block.0[(b2 >> 6) as usize] |= 1 << (b2 & 63);
        }
        UserProfile {
            node,
            favorite,
            secondary,
            library,
            filter,
        }
    }
    /// Number of songs in the library.
    pub fn library_size(&self) -> usize {
        self.library.len()
    }

    /// Whether the user stores `item` locally.
    #[inline]
    pub fn has(&self, item: ItemId) -> bool {
        // Blocked Bloom prefilter: a clear bit proves absence; only
        // (rare) positives pay for the exact binary search.
        let h = filter_mix(item);
        let block = &self.filter[(h >> 60) as usize & (FILTER_BLOCKS - 1)];
        let b1 = h & (BLOCK_BITS - 1);
        if block.0[(b1 >> 6) as usize] & (1 << (b1 & 63)) == 0 {
            return false;
        }
        let b2 = (h >> 32) & (BLOCK_BITS - 1);
        if block.0[(b2 >> 6) as usize] & (1 << (b2 & 63)) == 0 {
            return false;
        }
        self.library.binary_search(&item).is_ok()
    }

    /// Address of the filter cache line a [`UserProfile::has`] probe for
    /// `item` will touch, for software prefetching by event-loop drivers
    /// (the line is selected by a pure hash of the item, so it is known
    /// as soon as the query descriptor is, well before dispatch).
    #[inline]
    pub fn probe_addr(&self, item: ItemId) -> *const u8 {
        let h = filter_mix(item);
        let block = &self.filter[(h >> 60) as usize & (FILTER_BLOCKS - 1)];
        block as *const FilterBlock as *const u8
    }

    /// Library contents (sorted by id).
    pub fn library(&self) -> &[ItemId] {
        &self.library
    }

    /// Category sampled according to this user's preference mix: the
    /// favourite with probability `favorite_fraction`, otherwise uniform
    /// over the secondary categories ("the category in which a query falls
    /// matches the distribution of the user's preferences").
    pub fn sample_preferred_category<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        favorite_fraction: f64,
    ) -> CategoryId {
        if self.secondary.is_empty() || rng.gen::<f64>() < favorite_fraction {
            self.favorite
        } else {
            self.secondary[rng.gen_range(0..self.secondary.len())]
        }
    }
}

/// Generate all user profiles for a run. Deterministic in `(config, rngs)`;
/// each user has an independent RNG stream so profiles are insensitive to
/// generation order.
pub fn generate_profiles(
    config: &WorkloadConfig,
    catalog: &Catalog,
    rngs: &RngFactory,
) -> Vec<UserProfile> {
    config.validate().expect("invalid workload config");
    let lib_dist = TruncatedGaussian::new(
        config.library_mean,
        config.library_std,
        // At least one song per drawn category so every slice is non-empty.
        (config.secondary_categories + 1) as f64,
        // Cap so the favourite share always fits within one category.
        (catalog.per_category() as f64 / config.favorite_fraction.max(0.05))
            .min(config.library_mean + 4.0 * config.library_std),
    );

    (0..config.users)
        .map(|i| {
            let mut rng = rngs.stream("profile", i as u64);
            let favorite = catalog.sample_category(&mut rng);

            // 5 other *random* categories, distinct from the favourite and
            // from each other (uniform choice: the paper says "random", not
            // popularity-weighted).
            let mut pool: Vec<u16> = (0..catalog.categories())
                .filter(|&c| c != favorite.0)
                .collect();
            pool.shuffle(&mut rng);
            let secondary: Vec<CategoryId> = pool
                .into_iter()
                .take(config.secondary_categories)
                .map(CategoryId)
                .collect();

            let total = lib_dist
                .sample_count(&mut rng)
                .max(config.secondary_categories + 1);
            let favorite_count =
                ((total as f64 * config.favorite_fraction).round() as usize).min(total);
            let per_secondary = if secondary.is_empty() {
                0
            } else {
                (total - favorite_count) / secondary.len()
            };

            let mut library: Vec<ItemId> = Vec::with_capacity(total);
            library.extend(catalog.sample_distinct_songs(&mut rng, favorite, favorite_count));
            for &cat in &secondary {
                library.extend(catalog.sample_distinct_songs(&mut rng, cat, per_secondary));
            }
            library.sort_unstable();
            debug_assert!(no_duplicates(&library));

            UserProfile::from_parts(NodeId::from_index(i), favorite, secondary, library)
        })
        .collect()
}

fn no_duplicates(sorted: &[ItemId]) -> bool {
    sorted.windows(2).all(|w| w[0] != w[1])
}

/// Build the inverted index `item → holders` used by oracle-style checks
/// (e.g. "was this query satisfiable at all?") and by the local-indices
/// search policy.
pub fn invert_libraries(profiles: &[UserProfile]) -> ddr_sim::FastHashMap<ItemId, Vec<NodeId>> {
    let mut idx: ddr_sim::FastHashMap<ItemId, Vec<NodeId>> = ddr_sim::hash::fast_map();
    for p in profiles {
        for &item in p.library() {
            idx.entry(item).or_default().push(p.node);
        }
    }
    idx
}

/// Distinct items across all libraries (diagnostics: the paper's network
/// holds ≈ 400 000 song *copies* of 200 000 distinct songs).
pub fn distinct_items(profiles: &[UserProfile]) -> usize {
    let mut set: FastHashSet<ItemId> = ddr_sim::hash::fast_set();
    for p in profiles {
        set.extend(p.library().iter().copied());
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_setup() -> (WorkloadConfig, Catalog) {
        let cfg = WorkloadConfig {
            users: 100,
            songs: 10_000,
            categories: 50,
            ..WorkloadConfig::paper()
        };
        let cat = Catalog::new(cfg.songs, cfg.categories, cfg.theta);
        (cfg, cat)
    }

    #[test]
    fn profiles_are_deterministic() {
        let (cfg, cat) = small_setup();
        let rngs = RngFactory::new(77);
        let a = generate_profiles(&cfg, &cat, &rngs);
        let b = generate_profiles(&cfg, &cat, &rngs);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.favorite, pb.favorite);
            assert_eq!(pa.library(), pb.library());
        }
    }

    #[test]
    fn library_composition_follows_fractions() {
        let (cfg, cat) = small_setup();
        let rngs = RngFactory::new(1);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        for p in &profiles {
            let fav_count = p
                .library()
                .iter()
                .filter(|&&i| cat.category_of(i) == p.favorite)
                .count();
            let frac = fav_count as f64 / p.library_size() as f64;
            // 50 % ± rounding slack (integer division of the remainder)
            assert!(
                (0.40..=0.62).contains(&frac),
                "favourite fraction {frac} for {}",
                p.node
            );
            // all non-favourite songs belong to the declared secondaries
            for &i in p.library() {
                let c = cat.category_of(i);
                assert!(c == p.favorite || p.secondary.contains(&c));
            }
        }
    }

    #[test]
    fn library_sizes_cluster_around_mean() {
        let (cfg, cat) = small_setup();
        let rngs = RngFactory::new(2);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        let mean =
            profiles.iter().map(|p| p.library_size()).sum::<usize>() as f64 / profiles.len() as f64;
        assert!((170.0..230.0).contains(&mean), "mean library size {mean}");
    }

    #[test]
    fn secondary_categories_distinct_and_exclude_favorite() {
        let (cfg, cat) = small_setup();
        let rngs = RngFactory::new(3);
        for p in generate_profiles(&cfg, &cat, &rngs) {
            assert_eq!(p.secondary.len(), cfg.secondary_categories);
            let set: std::collections::HashSet<_> = p.secondary.iter().collect();
            assert_eq!(set.len(), p.secondary.len());
            assert!(!p.secondary.contains(&p.favorite));
        }
    }

    #[test]
    fn membership_test_agrees_with_library() {
        let (cfg, cat) = small_setup();
        let rngs = RngFactory::new(4);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        let p = &profiles[0];
        for &item in p.library().iter().take(20) {
            assert!(p.has(item));
        }
        // An item from a category the user doesn't draw from is absent.
        let foreign = (0..cfg.categories)
            .map(CategoryId)
            .find(|c| *c != p.favorite && !p.secondary.contains(c))
            .unwrap();
        assert!(!p.has(cat.item_at(foreign, 0)));
    }

    #[test]
    fn preferred_category_mix_matches_fractions() {
        let (cfg, cat) = small_setup();
        let rngs = RngFactory::new(5);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        let p = &profiles[0];
        let mut rng = rngs.stream("test", 0);
        let n = 20_000;
        let fav = (0..n)
            .filter(|_| p.sample_preferred_category(&mut rng, 0.5) == p.favorite)
            .count();
        let frac = fav as f64 / n as f64;
        assert!((0.47..0.53).contains(&frac), "favourite query share {frac}");
    }

    #[test]
    fn inverted_index_consistent() {
        let (cfg, cat) = small_setup();
        let rngs = RngFactory::new(6);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        let idx = invert_libraries(&profiles);
        let total: usize = idx.values().map(|v| v.len()).sum();
        assert_eq!(
            total,
            profiles.iter().map(|p| p.library_size()).sum::<usize>()
        );
        assert_eq!(idx.len(), distinct_items(&profiles));
        // Spot check membership agreement.
        for p in profiles.iter().take(5) {
            for &item in p.library().iter().take(5) {
                assert!(idx[&item].contains(&p.node));
            }
        }
    }

    #[test]
    fn paper_scale_totals_match_abstract_numbers() {
        // Full-scale generation: ~400k copies of 200k distinct songs.
        let cfg = WorkloadConfig::paper();
        let cat = Catalog::paper();
        let rngs = RngFactory::new(7);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        let copies: usize = profiles.iter().map(|p| p.library_size()).sum();
        assert!(
            (380_000..=420_000).contains(&copies),
            "total copies {copies} should be ≈ 400 000"
        );
    }
}
