//! Workload configuration with the paper's defaults (§4.2) and knobs for
//! sensitivity experiments.

use ddr_sim::SimDuration;

/// Which family of distributions the churn renewal process draws session
/// and offline lengths from. The paper uses exponential draws (§4.2); the
/// adversarial scenario pack swaps in Pareto draws with the *same means*
/// so heavy tails are the only variable under test.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ChurnModel {
    /// Memoryless sessions — the paper's model and the default.
    #[default]
    Exponential,
    /// Pareto sessions with tail exponent `shape` (must be > 1 so the
    /// configured means stay meaningful). `shape` in (1, 2] gives the
    /// infinite-variance regime measured in deployed file-sharing
    /// networks: most sessions are short, a few marathon sessions carry
    /// most of the online time.
    Pareto {
        /// Tail exponent α applied to both online and offline draws.
        shape: f64,
    },
}

/// A flash-crowd event: for a window of simulated time, a slice of every
/// user's queries is redirected onto one category with a sharper-than-
/// nominal Zipf exponent, modelling "everyone suddenly wants the new
/// album". Intensity follows a trapezoid: linear ramp up, flat hold,
/// linear decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Index of the spiked category (must be < `categories`).
    pub category: u16,
    /// Hour (since simulation start) the ramp begins.
    pub start_hour: f64,
    /// Ramp-up duration in hours (0 ⇒ step onset).
    pub ramp_hours: f64,
    /// Plateau duration in hours at peak intensity.
    pub hold_hours: f64,
    /// Decay duration in hours back to zero (0 ⇒ step offset).
    pub decay_hours: f64,
    /// Peak fraction of queries redirected to the spiked category
    /// (in [0, 1]; the remainder follows the user's normal mix).
    pub peak_weight: f64,
    /// Zipf exponent used *within* the spiked category during the event —
    /// typically sharper than the nominal θ so the crowd piles onto a
    /// handful of items.
    pub spike_theta: f64,
}

impl FlashCrowd {
    /// Trapezoid intensity in [0, `peak_weight`] at fractional `hour`.
    pub fn intensity(&self, hour: f64) -> f64 {
        let t = hour - self.start_hour;
        if t < 0.0 {
            return 0.0;
        }
        let ramp_end = self.ramp_hours;
        let hold_end = ramp_end + self.hold_hours;
        let decay_end = hold_end + self.decay_hours;
        let shape = if t < ramp_end {
            t / self.ramp_hours
        } else if t < hold_end {
            1.0
        } else if t < decay_end {
            (decay_end - t) / self.decay_hours
        } else {
            0.0
        };
        shape * self.peak_weight
    }

    /// Sanity-check against a workload with `categories` genres.
    pub fn validate(&self, categories: u16) -> Result<(), String> {
        if self.category >= categories {
            return Err(format!(
                "flash crowd category {} out of range (have {categories})",
                self.category
            ));
        }
        if !(0.0..=1.0).contains(&self.peak_weight) {
            return Err(format!(
                "flash crowd peak_weight {} out of [0,1]",
                self.peak_weight
            ));
        }
        for (name, v) in [
            ("start_hour", self.start_hour),
            ("ramp_hours", self.ramp_hours),
            ("hold_hours", self.hold_hours),
            ("decay_hours", self.decay_hours),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "flash crowd {name} must be finite and >= 0, got {v}"
                ));
            }
        }
        if self.spike_theta <= 0.0 || !self.spike_theta.is_finite() {
            return Err(format!(
                "flash crowd spike_theta must be positive, got {}",
                self.spike_theta
            ));
        }
        Ok(())
    }
}

/// All workload parameters for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of users (paper: 2 000).
    pub users: usize,
    /// Distinct songs in the search space (paper: 200 000).
    pub songs: u32,
    /// Music categories/genres (paper: 50).
    pub categories: u16,
    /// Zipf exponent for both song popularity and user-to-category
    /// assignment (paper: 0.9).
    pub theta: f64,
    /// Mean library size (paper: Gaussian mean 200).
    pub library_mean: f64,
    /// Library size standard deviation (paper: 50).
    pub library_std: f64,
    /// Fraction of a library (and of queries) devoted to the favourite
    /// category (paper: 50 %).
    pub favorite_fraction: f64,
    /// Number of secondary categories per user (paper: 5, at 10 % each).
    pub secondary_categories: usize,
    /// Mean online-session length (paper: exponential, 3 h).
    pub mean_online: SimDuration,
    /// Mean offline period (paper: exponential, 3 h).
    pub mean_offline: SimDuration,
    /// Mean time between queries while online. The paper states users
    /// query "with the same frequency" but omits the rate; this default is
    /// calibrated so static-Gnutella hits/messages land in the paper's
    /// reported per-hour ranges (see EXPERIMENTS.md "Calibration").
    pub mean_query_interval: SimDuration,
    /// Session/offline length distribution family (paper: exponential).
    pub churn_model: ChurnModel,
    /// Optional flash-crowd query spike (none in the paper's figures).
    pub flash_crowd: Option<FlashCrowd>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper()
    }
}

impl WorkloadConfig {
    /// The paper's settings.
    pub fn paper() -> Self {
        WorkloadConfig {
            users: 2_000,
            songs: 200_000,
            categories: 50,
            theta: 0.9,
            library_mean: 200.0,
            library_std: 50.0,
            favorite_fraction: 0.5,
            secondary_categories: 5,
            mean_online: SimDuration::from_hours(3),
            mean_offline: SimDuration::from_hours(3),
            mean_query_interval: SimDuration::from_mins(6),
            churn_model: ChurnModel::Exponential,
            flash_crowd: None,
        }
    }

    /// A proportionally scaled-down configuration for tests and benches:
    /// `scale` divides users and songs, keeping densities (library size,
    /// categories, rates) identical so protocol behaviour is preserved.
    ///
    /// At deep scales (beyond ~20, where a paper-sized library would no
    /// longer fit inside one scaled-down category and sampling without
    /// replacement would be impossible) the per-user library shrinks
    /// proportionally so the configuration stays valid. Those scales are
    /// for smoke tests only; measurement runs use scale ≤ 20, where the
    /// library is untouched.
    ///
    /// # Panics
    /// Panics unless `scale` divides the user and song counts and leaves
    /// songs divisible by categories.
    pub fn paper_scaled(scale: u32) -> Self {
        let base = WorkloadConfig::paper();
        assert!(scale >= 1);
        assert_eq!(base.users % scale as usize, 0);
        assert_eq!(base.songs % scale, 0);
        let songs = base.songs / scale;
        assert_eq!(
            songs % base.categories as u32,
            0,
            "scale breaks category division"
        );
        let mut c = WorkloadConfig {
            users: base.users / scale as usize,
            songs,
            ..base
        };
        // Keep the validity invariant from `validate`: the favourite share
        // of the largest plausible library must fit in one category.
        let per_cat = (c.songs / c.categories as u32) as f64;
        let max_fav = (c.library_mean + 4.0 * c.library_std) * c.favorite_fraction;
        if max_fav > per_cat {
            let shrink = per_cat / max_fav;
            c.library_mean *= shrink;
            c.library_std *= shrink;
        }
        c
    }

    /// Validate internal consistency; returns a description of the first
    /// violated constraint. Called by scenario builders before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 {
            return Err("users must be positive".into());
        }
        if self.songs == 0 || self.categories == 0 {
            return Err("songs and categories must be positive".into());
        }
        if !self.songs.is_multiple_of(self.categories as u32) {
            return Err(format!(
                "songs ({}) must divide evenly into categories ({})",
                self.songs, self.categories
            ));
        }
        if !(0.0..=1.0).contains(&self.favorite_fraction) {
            return Err(format!(
                "favorite_fraction {} out of [0,1]",
                self.favorite_fraction
            ));
        }
        if self.secondary_categories + 1 > self.categories as usize {
            return Err(format!(
                "need {} categories but have {}",
                self.secondary_categories + 1,
                self.categories
            ));
        }
        if self.library_mean <= 0.0 {
            return Err("library_mean must be positive".into());
        }
        let per_cat = (self.songs / self.categories as u32) as f64;
        // The favourite share of the largest plausible library must fit in
        // one category (sampling is without replacement).
        let max_lib = self.library_mean + 4.0 * self.library_std;
        if max_lib * self.favorite_fraction > per_cat {
            return Err(format!(
                "libraries too large for category size ({} > {per_cat})",
                max_lib * self.favorite_fraction
            ));
        }
        if self.mean_query_interval == SimDuration::ZERO {
            return Err("mean_query_interval must be positive".into());
        }
        if let ChurnModel::Pareto { shape } = self.churn_model {
            if !shape.is_finite() || shape <= 1.0 {
                return Err(format!(
                    "Pareto churn shape must exceed 1 for finite means, got {shape}"
                ));
            }
        }
        if let Some(fc) = &self.flash_crowd {
            fc.validate(self.categories)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_2() {
        let c = WorkloadConfig::paper();
        assert_eq!(c.users, 2_000);
        assert_eq!(c.songs, 200_000);
        assert_eq!(c.categories, 50);
        assert_eq!(c.theta, 0.9);
        assert_eq!(c.library_mean, 200.0);
        assert_eq!(c.library_std, 50.0);
        assert_eq!(c.favorite_fraction, 0.5);
        assert_eq!(c.secondary_categories, 5);
        assert_eq!(c.mean_online, SimDuration::from_hours(3));
        assert_eq!(c.mean_offline, SimDuration::from_hours(3));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_config_preserves_densities() {
        let c = WorkloadConfig::paper_scaled(10);
        assert_eq!(c.users, 200);
        assert_eq!(c.songs, 20_000);
        assert_eq!(c.categories, 50);
        assert_eq!(c.library_mean, 200.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_division() {
        let c = WorkloadConfig {
            songs: 100_001,
            ..WorkloadConfig::paper()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_too_few_categories() {
        let c = WorkloadConfig {
            categories: 5,
            songs: 200_000,
            ..WorkloadConfig::paper()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_oversized_libraries() {
        let c = WorkloadConfig {
            library_mean: 10_000.0,
            ..WorkloadConfig::paper()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_pareto_shape() {
        let c = WorkloadConfig {
            churn_model: ChurnModel::Pareto { shape: 1.0 },
            ..WorkloadConfig::paper()
        };
        assert!(c.validate().is_err());
        let ok = WorkloadConfig {
            churn_model: ChurnModel::Pareto { shape: 1.5 },
            ..WorkloadConfig::paper()
        };
        assert!(ok.validate().is_ok());
    }

    fn crowd() -> FlashCrowd {
        FlashCrowd {
            category: 3,
            start_hour: 2.0,
            ramp_hours: 1.0,
            hold_hours: 2.0,
            decay_hours: 1.0,
            peak_weight: 0.8,
            spike_theta: 1.2,
        }
    }

    #[test]
    fn flash_crowd_intensity_is_a_trapezoid() {
        let fc = crowd();
        assert_eq!(fc.intensity(0.0), 0.0);
        assert_eq!(fc.intensity(1.9), 0.0);
        assert!((fc.intensity(2.5) - 0.4).abs() < 1e-12); // mid-ramp
        assert!((fc.intensity(3.0) - 0.8).abs() < 1e-12); // plateau start
        assert!((fc.intensity(4.9) - 0.8).abs() < 1e-12); // plateau end
        assert!((fc.intensity(5.5) - 0.4).abs() < 1e-12); // mid-decay
        assert_eq!(fc.intensity(6.0), 0.0);
        assert_eq!(fc.intensity(10.0), 0.0);
    }

    #[test]
    fn flash_crowd_step_edges_do_not_divide_by_zero() {
        let fc = FlashCrowd {
            ramp_hours: 0.0,
            decay_hours: 0.0,
            ..crowd()
        };
        assert_eq!(fc.intensity(1.9), 0.0);
        assert!((fc.intensity(2.0) - 0.8).abs() < 1e-12);
        assert!((fc.intensity(3.9) - 0.8).abs() < 1e-12);
        assert_eq!(fc.intensity(4.0), 0.0);
    }

    #[test]
    fn validate_catches_bad_flash_crowd() {
        for bad in [
            FlashCrowd {
                category: 50,
                ..crowd()
            },
            FlashCrowd {
                peak_weight: 1.5,
                ..crowd()
            },
            FlashCrowd {
                ramp_hours: -1.0,
                ..crowd()
            },
            FlashCrowd {
                spike_theta: 0.0,
                ..crowd()
            },
        ] {
            let c = WorkloadConfig {
                flash_crowd: Some(bad),
                ..WorkloadConfig::paper()
            };
            assert!(c.validate().is_err(), "accepted {bad:?}");
        }
        let ok = WorkloadConfig {
            flash_crowd: Some(crowd()),
            ..WorkloadConfig::paper()
        };
        assert!(ok.validate().is_ok());
    }
}
