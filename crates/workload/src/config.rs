//! Workload configuration with the paper's defaults (§4.2) and knobs for
//! sensitivity experiments.

use ddr_sim::SimDuration;

/// All workload parameters for one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of users (paper: 2 000).
    pub users: usize,
    /// Distinct songs in the search space (paper: 200 000).
    pub songs: u32,
    /// Music categories/genres (paper: 50).
    pub categories: u16,
    /// Zipf exponent for both song popularity and user-to-category
    /// assignment (paper: 0.9).
    pub theta: f64,
    /// Mean library size (paper: Gaussian mean 200).
    pub library_mean: f64,
    /// Library size standard deviation (paper: 50).
    pub library_std: f64,
    /// Fraction of a library (and of queries) devoted to the favourite
    /// category (paper: 50 %).
    pub favorite_fraction: f64,
    /// Number of secondary categories per user (paper: 5, at 10 % each).
    pub secondary_categories: usize,
    /// Mean online-session length (paper: exponential, 3 h).
    pub mean_online: SimDuration,
    /// Mean offline period (paper: exponential, 3 h).
    pub mean_offline: SimDuration,
    /// Mean time between queries while online. The paper states users
    /// query "with the same frequency" but omits the rate; this default is
    /// calibrated so static-Gnutella hits/messages land in the paper's
    /// reported per-hour ranges (see EXPERIMENTS.md "Calibration").
    pub mean_query_interval: SimDuration,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper()
    }
}

impl WorkloadConfig {
    /// The paper's settings.
    pub fn paper() -> Self {
        WorkloadConfig {
            users: 2_000,
            songs: 200_000,
            categories: 50,
            theta: 0.9,
            library_mean: 200.0,
            library_std: 50.0,
            favorite_fraction: 0.5,
            secondary_categories: 5,
            mean_online: SimDuration::from_hours(3),
            mean_offline: SimDuration::from_hours(3),
            mean_query_interval: SimDuration::from_mins(6),
        }
    }

    /// A proportionally scaled-down configuration for tests and benches:
    /// `scale` divides users and songs, keeping densities (library size,
    /// categories, rates) identical so protocol behaviour is preserved.
    ///
    /// At deep scales (beyond ~20, where a paper-sized library would no
    /// longer fit inside one scaled-down category and sampling without
    /// replacement would be impossible) the per-user library shrinks
    /// proportionally so the configuration stays valid. Those scales are
    /// for smoke tests only; measurement runs use scale ≤ 20, where the
    /// library is untouched.
    ///
    /// # Panics
    /// Panics unless `scale` divides the user and song counts and leaves
    /// songs divisible by categories.
    pub fn paper_scaled(scale: u32) -> Self {
        let base = WorkloadConfig::paper();
        assert!(scale >= 1);
        assert_eq!(base.users % scale as usize, 0);
        assert_eq!(base.songs % scale, 0);
        let songs = base.songs / scale;
        assert_eq!(
            songs % base.categories as u32,
            0,
            "scale breaks category division"
        );
        let mut c = WorkloadConfig {
            users: base.users / scale as usize,
            songs,
            ..base
        };
        // Keep the validity invariant from `validate`: the favourite share
        // of the largest plausible library must fit in one category.
        let per_cat = (c.songs / c.categories as u32) as f64;
        let max_fav = (c.library_mean + 4.0 * c.library_std) * c.favorite_fraction;
        if max_fav > per_cat {
            let shrink = per_cat / max_fav;
            c.library_mean *= shrink;
            c.library_std *= shrink;
        }
        c
    }

    /// Validate internal consistency; returns a description of the first
    /// violated constraint. Called by scenario builders before running.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 {
            return Err("users must be positive".into());
        }
        if self.songs == 0 || self.categories == 0 {
            return Err("songs and categories must be positive".into());
        }
        if !self.songs.is_multiple_of(self.categories as u32) {
            return Err(format!(
                "songs ({}) must divide evenly into categories ({})",
                self.songs, self.categories
            ));
        }
        if !(0.0..=1.0).contains(&self.favorite_fraction) {
            return Err(format!(
                "favorite_fraction {} out of [0,1]",
                self.favorite_fraction
            ));
        }
        if self.secondary_categories + 1 > self.categories as usize {
            return Err(format!(
                "need {} categories but have {}",
                self.secondary_categories + 1,
                self.categories
            ));
        }
        if self.library_mean <= 0.0 {
            return Err("library_mean must be positive".into());
        }
        let per_cat = (self.songs / self.categories as u32) as f64;
        // The favourite share of the largest plausible library must fit in
        // one category (sampling is without replacement).
        let max_lib = self.library_mean + 4.0 * self.library_std;
        if max_lib * self.favorite_fraction > per_cat {
            return Err(format!(
                "libraries too large for category size ({} > {per_cat})",
                max_lib * self.favorite_fraction
            ));
        }
        if self.mean_query_interval == SimDuration::ZERO {
            return Err("mean_query_interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_2() {
        let c = WorkloadConfig::paper();
        assert_eq!(c.users, 2_000);
        assert_eq!(c.songs, 200_000);
        assert_eq!(c.categories, 50);
        assert_eq!(c.theta, 0.9);
        assert_eq!(c.library_mean, 200.0);
        assert_eq!(c.library_std, 50.0);
        assert_eq!(c.favorite_fraction, 0.5);
        assert_eq!(c.secondary_categories, 5);
        assert_eq!(c.mean_online, SimDuration::from_hours(3));
        assert_eq!(c.mean_offline, SimDuration::from_hours(3));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_config_preserves_densities() {
        let c = WorkloadConfig::paper_scaled(10);
        assert_eq!(c.users, 200);
        assert_eq!(c.songs, 20_000);
        assert_eq!(c.categories, 50);
        assert_eq!(c.library_mean, 200.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_division() {
        let c = WorkloadConfig {
            songs: 100_001,
            ..WorkloadConfig::paper()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_too_few_categories() {
        let c = WorkloadConfig {
            categories: 5,
            songs: 200_000,
            ..WorkloadConfig::paper()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_catches_oversized_libraries() {
        let c = WorkloadConfig {
            library_mean: 10_000.0,
            ..WorkloadConfig::paper()
        };
        assert!(c.validate().is_err());
    }
}
