//! User churn: alternating online/offline periods, both exponentially
//! distributed with mean 3 hours (paper §4.2), so on average half the
//! population (≈ 1 000 of 2 000 users) is online at any instant. The
//! adversarial scenario pack swaps the exponential draws for Pareto draws
//! with the same means via [`ChurnModel`], keeping tail weight the only
//! variable under test.

use crate::config::{ChurnModel, WorkloadConfig};
use crate::dist::{Exponential, Pareto};
use ddr_sim::{RngFactory, SimDuration};
use rand::rngs::SmallRng;
use rand::Rng;

/// One period-length distribution, chosen by [`ChurnModel`]. Both arms
/// consume exactly one `f64` draw per sample, so switching models changes
/// the period lengths but not the per-user RNG stream cadence.
#[derive(Debug, Clone, Copy)]
enum SessionDist {
    Exponential(Exponential),
    Pareto(Pareto),
}

impl SessionDist {
    fn from_model(model: ChurnModel, mean_ms: f64) -> Self {
        match model {
            ChurnModel::Exponential => SessionDist::Exponential(Exponential::from_mean(mean_ms)),
            ChurnModel::Pareto { shape } => SessionDist::Pareto(Pareto::from_mean(mean_ms, shape)),
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> f64 {
        match self {
            SessionDist::Exponential(d) => d.sample(rng),
            SessionDist::Pareto(d) => d.sample(rng),
        }
    }
}

/// The churn process for one user: an alternating renewal process.
#[derive(Debug)]
pub struct ChurnProcess {
    online_dist: SessionDist,
    offline_dist: SessionDist,
    rng: SmallRng,
    online: bool,
}

impl ChurnProcess {
    /// Create the process for `user`, drawing its initial state with equal
    /// probability (the stationary distribution when both means are equal;
    /// for unequal means the stationary online probability is
    /// `mean_online / (mean_online + mean_offline)`, which is what we use).
    pub fn new(config: &WorkloadConfig, rngs: &RngFactory, user: u64) -> Self {
        let mut rng = rngs.stream("churn", user);
        let on = config.mean_online.as_millis() as f64;
        let off = config.mean_offline.as_millis() as f64;
        let p_online = on / (on + off);
        let online = rng.gen::<f64>() < p_online;
        ChurnProcess {
            online_dist: SessionDist::from_model(config.churn_model, on),
            offline_dist: SessionDist::from_model(config.churn_model, off),
            rng,
            online,
        }
    }

    /// Whether the user is currently online.
    pub fn online(&self) -> bool {
        self.online
    }

    /// Duration until the next state toggle, and flip the state. The
    /// exponential's memorylessness makes the initial residual time
    /// identically distributed to a full period, so no special-casing of
    /// the first interval is needed for stationarity. (Pareto periods are
    /// *not* memoryless — sampling a full period at login slightly
    /// undercounts the marathon sessions a stationary observer would land
    /// inside, which is fine: the scenario pack measures responses to the
    /// tail, not exact stationarity.)
    pub fn next_toggle(&mut self) -> SimDuration {
        let ms = if self.online {
            self.online_dist.sample(&mut self.rng)
        } else {
            self.offline_dist.sample(&mut self.rng)
        };
        self.online = !self.online;
        SimDuration::from_millis(ms.max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig::paper()
    }

    #[test]
    fn initial_state_is_roughly_half_online() {
        let rngs = RngFactory::new(1);
        let online = (0..4_000)
            .filter(|&u| ChurnProcess::new(&cfg(), &rngs, u).online())
            .count();
        assert!((1_850..=2_150).contains(&online), "online {online}/4000");
    }

    #[test]
    fn toggle_flips_state() {
        let rngs = RngFactory::new(2);
        let mut p = ChurnProcess::new(&cfg(), &rngs, 0);
        let before = p.online();
        let d = p.next_toggle();
        assert_ne!(before, p.online());
        assert!(d >= SimDuration::from_millis(1));
    }

    #[test]
    fn mean_session_length_close_to_3h() {
        let rngs = RngFactory::new(3);
        let mut p = ChurnProcess::new(&cfg(), &rngs, 5);
        // Force into online state for measuring online periods.
        if !p.online() {
            p.next_toggle();
        }
        let n = 20_000;
        let mut sum_ms = 0u64;
        for _ in 0..n {
            // online -> offline toggle samples an online duration
            sum_ms += p.next_toggle().as_millis();
            // skip the offline period
            p.next_toggle();
        }
        let mean_h = sum_ms as f64 / n as f64 / 3_600_000.0;
        assert!((2.9..3.1).contains(&mean_h), "mean online {mean_h} h");
    }

    #[test]
    fn asymmetric_means_shift_stationary_probability() {
        let config = WorkloadConfig {
            mean_online: SimDuration::from_hours(1),
            mean_offline: SimDuration::from_hours(3),
            ..cfg()
        };
        let rngs = RngFactory::new(4);
        let online = (0..8_000)
            .filter(|&u| ChurnProcess::new(&config, &rngs, u).online())
            .count();
        // expected 25 %
        assert!((1_800..=2_200).contains(&online), "online {online}/8000");
    }

    #[test]
    fn processes_are_deterministic_per_user() {
        let rngs = RngFactory::new(5);
        let mut a = ChurnProcess::new(&cfg(), &rngs, 9);
        let mut b = ChurnProcess::new(&cfg(), &rngs, 9);
        for _ in 0..100 {
            assert_eq!(a.next_toggle(), b.next_toggle());
        }
    }

    #[test]
    fn pareto_model_keeps_mean_but_fattens_the_tail() {
        let config = WorkloadConfig {
            churn_model: ChurnModel::Pareto { shape: 1.5 },
            ..cfg()
        };
        let rngs = RngFactory::new(6);
        let mut p = ChurnProcess::new(&config, &rngs, 11);
        if !p.online() {
            p.next_toggle();
        }
        let n = 200_000;
        let mut sum_ms = 0f64;
        let mut over_9h = 0usize;
        for _ in 0..n {
            let d = p.next_toggle().as_millis();
            sum_ms += d as f64;
            if d > 9 * 3_600_000 {
                over_9h += 1;
            }
            p.next_toggle();
        }
        let mean_h = sum_ms / n as f64 / 3_600_000.0;
        // Shape 1.5 has infinite variance, so the sample mean wanders —
        // accept a wide band around the configured 3 h.
        assert!((2.0..5.0).contains(&mean_h), "mean online {mean_h} h");
        // P(X > 3·mean) = ((α−1)/(3α))^α = (1/9)^1.5 ≈ 3.7 %; the
        // exponential puts only e^{-3} ≈ 5 % above 9 h too, but with
        // scale = 1 h every Pareto draw ≥ 1 h — check the tail directly.
        let tail = over_9h as f64 / n as f64;
        assert!((0.02..0.06).contains(&tail), "tail share {tail}");
    }

    #[test]
    fn pareto_model_is_deterministic_per_user() {
        let config = WorkloadConfig {
            churn_model: ChurnModel::Pareto { shape: 1.3 },
            ..cfg()
        };
        let rngs = RngFactory::new(7);
        let mut a = ChurnProcess::new(&config, &rngs, 2);
        let mut b = ChurnProcess::new(&config, &rngs, 2);
        for _ in 0..100 {
            assert_eq!(a.next_toggle(), b.next_toggle());
        }
    }
}
