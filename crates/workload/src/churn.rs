//! User churn: alternating online/offline periods, both exponentially
//! distributed with mean 3 hours (paper §4.2), so on average half the
//! population (≈ 1 000 of 2 000 users) is online at any instant.

use crate::config::WorkloadConfig;
use crate::dist::Exponential;
use ddr_sim::{RngFactory, SimDuration};
use rand::rngs::SmallRng;
use rand::Rng;

/// The churn process for one user: an alternating renewal process.
#[derive(Debug)]
pub struct ChurnProcess {
    online_dist: Exponential,
    offline_dist: Exponential,
    rng: SmallRng,
    online: bool,
}

impl ChurnProcess {
    /// Create the process for `user`, drawing its initial state with equal
    /// probability (the stationary distribution when both means are equal;
    /// for unequal means the stationary online probability is
    /// `mean_online / (mean_online + mean_offline)`, which is what we use).
    pub fn new(config: &WorkloadConfig, rngs: &RngFactory, user: u64) -> Self {
        let mut rng = rngs.stream("churn", user);
        let on = config.mean_online.as_millis() as f64;
        let off = config.mean_offline.as_millis() as f64;
        let p_online = on / (on + off);
        let online = rng.gen::<f64>() < p_online;
        ChurnProcess {
            online_dist: Exponential::from_mean(on),
            offline_dist: Exponential::from_mean(off),
            rng,
            online,
        }
    }

    /// Whether the user is currently online.
    pub fn online(&self) -> bool {
        self.online
    }

    /// Duration until the next state toggle, and flip the state. The
    /// exponential's memorylessness makes the initial residual time
    /// identically distributed to a full period, so no special-casing of
    /// the first interval is needed for stationarity.
    pub fn next_toggle(&mut self) -> SimDuration {
        let ms = if self.online {
            self.online_dist.sample(&mut self.rng)
        } else {
            self.offline_dist.sample(&mut self.rng)
        };
        self.online = !self.online;
        SimDuration::from_millis(ms.max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig::paper()
    }

    #[test]
    fn initial_state_is_roughly_half_online() {
        let rngs = RngFactory::new(1);
        let online = (0..4_000)
            .filter(|&u| ChurnProcess::new(&cfg(), &rngs, u).online())
            .count();
        assert!((1_850..=2_150).contains(&online), "online {online}/4000");
    }

    #[test]
    fn toggle_flips_state() {
        let rngs = RngFactory::new(2);
        let mut p = ChurnProcess::new(&cfg(), &rngs, 0);
        let before = p.online();
        let d = p.next_toggle();
        assert_ne!(before, p.online());
        assert!(d >= SimDuration::from_millis(1));
    }

    #[test]
    fn mean_session_length_close_to_3h() {
        let rngs = RngFactory::new(3);
        let mut p = ChurnProcess::new(&cfg(), &rngs, 5);
        // Force into online state for measuring online periods.
        if !p.online() {
            p.next_toggle();
        }
        let n = 20_000;
        let mut sum_ms = 0u64;
        for _ in 0..n {
            // online -> offline toggle samples an online duration
            sum_ms += p.next_toggle().as_millis();
            // skip the offline period
            p.next_toggle();
        }
        let mean_h = sum_ms as f64 / n as f64 / 3_600_000.0;
        assert!((2.9..3.1).contains(&mean_h), "mean online {mean_h} h");
    }

    #[test]
    fn asymmetric_means_shift_stationary_probability() {
        let config = WorkloadConfig {
            mean_online: SimDuration::from_hours(1),
            mean_offline: SimDuration::from_hours(3),
            ..cfg()
        };
        let rngs = RngFactory::new(4);
        let online = (0..8_000)
            .filter(|&u| ChurnProcess::new(&config, &rngs, u).online())
            .count();
        // expected 25 %
        assert!((1_800..=2_200).contains(&online), "online {online}/8000");
    }

    #[test]
    fn processes_are_deterministic_per_user() {
        let rngs = RngFactory::new(5);
        let mut a = ChurnProcess::new(&cfg(), &rngs, 9);
        let mut b = ChurnProcess::new(&cfg(), &rngs, 9);
        for _ in 0..100 {
            assert_eq!(a.next_toggle(), b.next_toggle());
        }
    }
}
