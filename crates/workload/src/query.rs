//! Query generation (paper §4.2): while online, each user issues queries
//! with exponentially-distributed inter-arrival times; the queried category
//! follows the user's preference mix and the song follows within-category
//! popularity. Each query requests exactly one song.

use crate::catalog::{Catalog, CategoryId};
use crate::config::{FlashCrowd, WorkloadConfig};
use crate::dist::{Exponential, Zipf};
use crate::profile::UserProfile;
use ddr_sim::{ItemId, RngFactory, SimDuration};
use rand::rngs::SmallRng;
use rand::Rng;

/// Flash-crowd state shared by shape across all users: the spiked
/// category and the sharper within-category popularity curve used while
/// the crowd is active.
#[derive(Debug)]
struct FlashSpike {
    crowd: FlashCrowd,
    category: CategoryId,
    zipf: Zipf,
}

/// Per-user query stream.
#[derive(Debug)]
pub struct QueryGenerator {
    interval: Exponential,
    favorite_fraction: f64,
    /// Skip songs already in the local library (a user searches the network
    /// for content they do *not* have; local hits would trivially satisfy
    /// Algo 1's "satisfied locally" branch and never enter the network).
    skip_local: bool,
    flash: Option<FlashSpike>,
    rng: SmallRng,
}

impl QueryGenerator {
    /// Create the stream for `user`.
    pub fn new(config: &WorkloadConfig, rngs: &RngFactory, user: u64) -> Self {
        QueryGenerator {
            interval: Exponential::from_mean(config.mean_query_interval.as_millis() as f64),
            favorite_fraction: config.favorite_fraction,
            skip_local: true,
            flash: config.flash_crowd.map(|crowd| FlashSpike {
                crowd,
                category: CategoryId(crowd.category),
                zipf: Zipf::new(
                    (config.songs / config.categories as u32) as usize,
                    crowd.spike_theta,
                ),
            }),
            rng: rngs.stream("query", user),
        }
    }

    /// Allow queries for locally-stored songs (used by tests that exercise
    /// the local-satisfaction branch of the search algorithm).
    pub fn allow_local(mut self) -> Self {
        self.skip_local = false;
        self
    }

    /// Time until this user's next query.
    pub fn next_interval(&mut self) -> SimDuration {
        SimDuration::from_millis(self.interval.sample(&mut self.rng).max(1.0) as u64)
    }

    /// Draw the next query target for `profile`.
    pub fn next_target(&mut self, catalog: &Catalog, profile: &UserProfile) -> ItemId {
        // Resampling bound: libraries hold ≈ 100 of 4 000 songs per drawn
        // category, so a local hit happens ≲ 15 % of the time (popular
        // songs overlap more); 64 attempts make a forever-loop practically
        // and, via the fallback, formally impossible.
        for _ in 0..64 {
            let cat = profile.sample_preferred_category(&mut self.rng, self.favorite_fraction);
            let item = catalog.sample_song(&mut self.rng, cat);
            if !(self.skip_local && profile.has(item)) {
                return item;
            }
        }
        // Fallback: least popular song of the favourite category — all but
        // guaranteed absent from the library.
        catalog.item_at(profile.favorite, catalog.per_category() - 1)
    }

    /// Draw the next query target for `profile` at fractional `hour` since
    /// simulation start. With no flash crowd configured — or outside the
    /// crowd's window — this consumes exactly the same RNG draws as
    /// [`next_target`](Self::next_target), so benign runs are bit-identical
    /// whether callers pass the clock or not. Inside the window, each query
    /// is redirected to the spiked category with probability equal to the
    /// trapezoid intensity, and the song is drawn from the sharper
    /// `spike_theta` popularity curve.
    pub fn next_target_at(
        &mut self,
        catalog: &Catalog,
        profile: &UserProfile,
        hour: f64,
    ) -> ItemId {
        let Some(flash) = &self.flash else {
            return self.next_target(catalog, profile);
        };
        let w = flash.crowd.intensity(hour);
        if w <= 0.0 {
            return self.next_target(catalog, profile);
        }
        for _ in 0..64 {
            let item = if self.rng.gen::<f64>() < w {
                let rank = flash.zipf.sample(&mut self.rng) as u32;
                catalog.item_at(flash.category, rank)
            } else {
                let cat = profile.sample_preferred_category(&mut self.rng, self.favorite_fraction);
                catalog.sample_song(&mut self.rng, cat)
            };
            if !(self.skip_local && profile.has(item)) {
                return item;
            }
        }
        catalog.item_at(profile.favorite, catalog.per_category() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::generate_profiles;

    fn setup() -> (WorkloadConfig, Catalog, Vec<UserProfile>, RngFactory) {
        let cfg = WorkloadConfig {
            users: 50,
            songs: 10_000,
            categories: 50,
            ..WorkloadConfig::paper()
        };
        let cat = Catalog::new(cfg.songs, cfg.categories, cfg.theta);
        let rngs = RngFactory::new(42);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        (cfg, cat, profiles, rngs)
    }

    #[test]
    fn intervals_have_configured_mean() {
        let (cfg, _, _, rngs) = setup();
        let mut q = QueryGenerator::new(&cfg, &rngs, 0);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| q.next_interval().as_millis()).sum();
        let mean = sum as f64 / n as f64;
        let expected = cfg.mean_query_interval.as_millis() as f64;
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn targets_avoid_local_library() {
        let (cfg, cat, profiles, rngs) = setup();
        let p = &profiles[3];
        let mut q = QueryGenerator::new(&cfg, &rngs, 3);
        for _ in 0..2_000 {
            let t = q.next_target(&cat, p);
            assert!(!p.has(t), "queried a locally stored song {t}");
        }
    }

    #[test]
    fn targets_follow_preference_mix() {
        // Paper-density catalog (4 000 songs/category): libraries then hold
        // only ~2.5 % of a category, so skip-local barely biases the mix.
        let cfg = WorkloadConfig {
            users: 20,
            ..WorkloadConfig::paper()
        };
        let cat = Catalog::new(cfg.songs, cfg.categories, cfg.theta);
        let rngs = RngFactory::new(42);
        let profiles = generate_profiles(&cfg, &cat, &rngs);
        let p = &profiles[0];
        let mut q = QueryGenerator::new(&cfg, &rngs, 0);
        let n = 10_000;
        let mut fav = 0;
        for _ in 0..n {
            let t = q.next_target(&cat, p);
            let c = cat.category_of(t);
            assert!(c == p.favorite || p.secondary.contains(&c));
            if c == p.favorite {
                fav += 1;
            }
        }
        let frac = fav as f64 / n as f64;
        // Nominal 50 %; skip-local resampling shifts it slightly because
        // the favourite category holds more of the library.
        assert!((0.42..0.58).contains(&frac), "favourite share {frac}");
    }

    #[test]
    fn allow_local_can_return_owned_songs() {
        let (cfg, cat, profiles, rngs) = setup();
        let p = &profiles[1];
        let mut q = QueryGenerator::new(&cfg, &rngs, 1).allow_local();
        let hit_local = (0..5_000).any(|_| p.has(q.next_target(&cat, p)));
        assert!(hit_local, "never drew a local song with skip_local off");
    }

    #[test]
    fn next_target_at_matches_next_target_without_a_crowd() {
        let (cfg, cat, profiles, rngs) = setup();
        let mut a = QueryGenerator::new(&cfg, &rngs, 4);
        let mut b = QueryGenerator::new(&cfg, &rngs, 4);
        for i in 0..500 {
            assert_eq!(
                a.next_target(&cat, &profiles[4]),
                b.next_target_at(&cat, &profiles[4], i as f64 * 0.01),
            );
        }
    }

    fn crowd_cfg() -> WorkloadConfig {
        let (cfg, ..) = setup();
        WorkloadConfig {
            flash_crowd: Some(crate::config::FlashCrowd {
                category: 7,
                start_hour: 2.0,
                ramp_hours: 0.5,
                hold_hours: 2.0,
                decay_hours: 0.5,
                peak_weight: 0.9,
                spike_theta: 1.2,
            }),
            ..cfg
        }
    }

    #[test]
    fn next_target_at_outside_window_matches_benign_draws() {
        let (cfg, cat, profiles, rngs) = setup();
        let crowd_cfg = crowd_cfg();
        let mut benign = QueryGenerator::new(&cfg, &rngs, 4);
        let mut crowded = QueryGenerator::new(&crowd_cfg, &rngs, 4);
        // Before the spike and after it dies out, identical draw sequence.
        for _ in 0..300 {
            assert_eq!(
                benign.next_target(&cat, &profiles[4]),
                crowded.next_target_at(&cat, &profiles[4], 1.5),
            );
        }
        for _ in 0..300 {
            assert_eq!(
                benign.next_target(&cat, &profiles[4]),
                crowded.next_target_at(&cat, &profiles[4], 8.0),
            );
        }
    }

    #[test]
    fn flash_crowd_redirects_queries_at_peak() {
        let (_, cat, profiles, rngs) = setup();
        let cfg = crowd_cfg();
        let p = &profiles[2];
        let spiked = CategoryId(7);
        assert_ne!(p.favorite, spiked, "test profile must not favour the spike");
        let mut q = QueryGenerator::new(&cfg, &rngs, 2);
        let n = 4_000;
        let hits = (0..n)
            .filter(|_| cat.category_of(q.next_target_at(&cat, p, 3.0)) == spiked)
            .count();
        let frac = hits as f64 / n as f64;
        // Peak weight 0.9; skip-local resampling moves it only slightly.
        assert!((0.8..0.97).contains(&frac), "spiked share {frac}");
    }

    #[test]
    fn generator_is_deterministic() {
        let (cfg, cat, profiles, rngs) = setup();
        let mut a = QueryGenerator::new(&cfg, &rngs, 7);
        let mut b = QueryGenerator::new(&cfg, &rngs, 7);
        for _ in 0..200 {
            assert_eq!(a.next_interval(), b.next_interval());
            assert_eq!(
                a.next_target(&cat, &profiles[7]),
                b.next_target(&cat, &profiles[7])
            );
        }
    }
}
