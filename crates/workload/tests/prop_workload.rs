//! Property-based tests for workload generation invariants.

use ddr_sim::RngFactory;
use ddr_workload::{generate_profiles, Catalog, WorkloadConfig, Zipf};
use proptest::prelude::*;

proptest! {
    /// Zipf PMFs are positive, non-increasing in rank, and sum to 1.
    #[test]
    fn zipf_pmf_well_formed(n in 1usize..2_000, theta in 0.0f64..2.0) {
        let z = Zipf::new(n, theta);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for k in 0..n {
            let p = z.pmf(k);
            prop_assert!(p > 0.0);
            prop_assert!(p <= prev + 1e-12, "pmf increased at rank {k}");
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-6, "pmf sums to {total}");
    }

    /// Samples always land in the domain; distinct sampling returns the
    /// requested count without duplicates.
    #[test]
    fn zipf_sampling_in_domain(
        n in 1usize..500,
        theta in 0.0f64..1.5,
        seed in any::<u64>(),
        k_frac in 0.0f64..1.0,
    ) {
        let z = Zipf::new(n, theta);
        let mut rng = RngFactory::new(seed).stream("zipf", 0);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let k = ((n as f64 * k_frac) as usize).min(n);
        let picks = z.sample_distinct(&mut rng, k);
        prop_assert_eq!(picks.len(), k);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        prop_assert_eq!(set.len(), k);
    }

    /// Generated profiles always satisfy the structural invariants for
    /// any valid scaled configuration.
    #[test]
    fn profiles_structurally_valid(seed in any::<u64>(), users in 1usize..40) {
        let cfg = WorkloadConfig {
            users,
            songs: 50_000,
            categories: 50,
            ..WorkloadConfig::paper()
        };
        prop_assume!(cfg.validate().is_ok());
        let catalog = Catalog::new(cfg.songs, cfg.categories, cfg.theta);
        let rngs = RngFactory::new(seed);
        let profiles = generate_profiles(&cfg, &catalog, &rngs);
        prop_assert_eq!(profiles.len(), users);
        for p in &profiles {
            // library sorted, unique, non-empty
            prop_assert!(p.library_size() > 0);
            prop_assert!(p.library().windows(2).all(|w| w[0] < w[1]));
            // secondaries distinct and exclude the favourite
            prop_assert_eq!(p.secondary.len(), cfg.secondary_categories);
            prop_assert!(!p.secondary.contains(&p.favorite));
            // every song belongs to a declared category
            for &item in p.library() {
                let c = catalog.category_of(item);
                prop_assert!(c == p.favorite || p.secondary.contains(&c));
            }
        }
    }
}
