//! Live introspection for the serve bus: a monitor thread sampling
//! shared atomic counters into the same `"v":1` timeline format the
//! simulator's metrics layer writes, plus an optional plaintext TCP
//! endpoint serving a Prometheus-style snapshot while the run is live.
//!
//! The instrumentation is strictly *observational*: shards and the load
//! generator bump lock-free atomics on paths they already execute, the
//! monitor thread only reads them, and completed-query outcomes are
//! drained into the same end-of-run report whether the monitor is on or
//! off. `monitor_does_not_perturb_the_report` pins that the monitor's
//! cumulative counters agree exactly with the final [`ServeReport`]
//! fields.

use crate::bus::WallClock;
use ddr_sim::MetricsHub;
use ddr_telemetry::{JsonlMetrics, MetricsRecorder, TelemetryConfig};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Relaxed ordering everywhere: the monitor reports trends, not
/// linearizable cuts; the end-of-run parity check happens after the
/// shard threads are joined (a full synchronization point).
const ORD: Ordering = Ordering::Relaxed;

/// A lock-free log-bucketed latency histogram, bucket geometry shared
/// with `ddr_telemetry::LogHistogram`: bucket `k` covers
/// `[2^(k-1), 2^k)` ms, bucket 0 everything below 1 ms.
#[derive(Debug)]
pub struct AtomicLogHist {
    counts: [AtomicU64; 64],
    total: AtomicU64,
}

impl Default for AtomicLogHist {
    fn default() -> Self {
        AtomicLogHist {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
        }
    }
}

impl AtomicLogHist {
    fn bucket(v: f64) -> usize {
        if v.is_nan() || v < 1.0 {
            return 0;
        }
        let u = if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        };
        ((64 - u.leading_zeros()) as usize).min(63)
    }

    /// Record one sample (any thread).
    pub fn record(&self, v: f64) {
        self.counts[Self::bucket(v)].fetch_add(1, ORD);
        self.total.fetch_add(1, ORD);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(ORD)
    }

    /// Upper bucket edge covering the `q`-quantile; 0 when empty.
    /// Approximate under concurrent writes (counts are read one by one),
    /// which is fine for a rolling dashboard figure.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total.load(ORD);
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, c) in self.counts.iter().enumerate() {
            seen += c.load(ORD);
            if seen >= rank {
                return if k == 0 { 1.0 } else { (1u64 << k) as f64 };
            }
        }
        (1u64 << 63) as f64
    }
}

/// Counters and levels shared between the bus (writers) and the monitor
/// / TCP endpoint (readers). One instance per run, behind an `Arc`.
#[derive(Debug)]
pub struct MonitorShared {
    /// Per-shard inbox occupancy: +1 on every successful channel send,
    /// -1 on every receive.
    pub inbox_depth: Vec<AtomicUsize>,
    /// Per-shard timer-heap size, stored by each shard once per loop.
    pub heap_len: Vec<AtomicUsize>,
    /// Envelopes the load generator handed to the bus.
    pub offered: AtomicU64,
    /// Issue messages delivered to nodes.
    pub issued: AtomicU64,
    /// Queries whose collection window closed.
    pub completed: AtomicU64,
    /// Completed queries with at least one result.
    pub hits: AtomicU64,
    /// First-result latency, milliseconds.
    pub latency_ms: AtomicLogHist,
    /// Set by the coordinator once the shards are joined; tells the
    /// monitor and endpoint threads to emit a final window and exit.
    pub done: AtomicBool,
}

impl MonitorShared {
    /// Fresh (all-zero) state for `nshards` shards.
    pub fn new(nshards: usize) -> Self {
        MonitorShared {
            inbox_depth: (0..nshards).map(|_| AtomicUsize::new(0)).collect(),
            heap_len: (0..nshards).map(|_| AtomicUsize::new(0)).collect(),
            offered: AtomicU64::new(0),
            issued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            latency_ms: AtomicLogHist::default(),
            done: AtomicBool::new(false),
        }
    }

    /// The Prometheus-text exposition of the current state.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(512);
        for (name, v) in [
            ("ddr_serve_queries_offered", self.offered.load(ORD)),
            ("ddr_serve_queries_issued", self.issued.load(ORD)),
            ("ddr_serve_queries_completed", self.completed.load(ORD)),
            ("ddr_serve_hits", self.hits.load(ORD)),
            ("ddr_serve_latency_samples", self.latency_ms.count()),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in [
            ("ddr_serve_latency_p50_ms", self.latency_ms.quantile(0.50)),
            ("ddr_serve_latency_p99_ms", self.latency_ms.quantile(0.99)),
        ] {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        out.push_str("# TYPE ddr_serve_inbox_depth gauge\n");
        for (i, d) in self.inbox_depth.iter().enumerate() {
            out.push_str(&format!(
                "ddr_serve_inbox_depth{{shard=\"{i}\"}} {}\n",
                d.load(ORD)
            ));
        }
        out.push_str("# TYPE ddr_serve_timer_heap gauge\n");
        for (i, d) in self.heap_len.iter().enumerate() {
            out.push_str(&format!(
                "ddr_serve_timer_heap{{shard=\"{i}\"}} {}\n",
                d.load(ORD)
            ));
        }
        out
    }

    /// The live report as a JSON object (the dashboard analogue of the
    /// end-of-run [`crate::ServeReport`]).
    pub fn report_json(&self) -> String {
        let completed = self.completed.load(ORD);
        let hits = self.hits.load(ORD);
        let hit_rate = if completed == 0 {
            0.0
        } else {
            hits as f64 / completed as f64
        };
        let depths: Vec<String> = self
            .inbox_depth
            .iter()
            .map(|d| d.load(ORD).to_string())
            .collect();
        let heaps: Vec<String> = self
            .heap_len
            .iter()
            .map(|d| d.load(ORD).to_string())
            .collect();
        format!(
            "{{\"queries_offered\":{},\"queries_issued\":{},\"queries_completed\":{completed},\
             \"hits\":{hits},\"hit_rate\":{hit_rate},\"p50_first_ms\":{},\"p99_first_ms\":{},\
             \"inbox_depth\":[{}],\"timer_heap\":[{}]}}",
            self.offered.load(ORD),
            self.issued.load(ORD),
            self.latency_ms.quantile(0.50),
            self.latency_ms.quantile(0.99),
            depths.join(","),
            heaps.join(","),
        )
    }
}

/// Spawn the monitor thread: every `interval_ms` of wall time it copies
/// the shared atomics into a `MetricsRecorder` window (cumulative
/// counters are differenced into per-window deltas by the recorder) and
/// appends a timeline record to `telemetry.metrics_path`. After `done`
/// is raised it emits one final window — taken *after* the shard
/// threads joined, so the file's column sums equal the final report —
/// and flushes.
pub(crate) fn spawn_monitor(
    shared: Arc<MonitorShared>,
    clock: Arc<WallClock>,
    telemetry: TelemetryConfig,
    interval_ms: u64,
) -> JoinHandle<u64> {
    thread::spawn(move || {
        let mut rec: MetricsRecorder<JsonlMetrics> = MetricsRecorder::new(&telemetry);
        let interval = interval_ms.max(1);
        let mut prev_completed = 0u64;
        let mut prev_t = clock.now().as_millis();
        let mut next = prev_t + interval;
        loop {
            let finished = shared.done.load(ORD);
            let now = clock.now().as_millis();
            if now >= next || finished {
                let completed = shared.completed.load(ORD);
                let dt_s = (now.saturating_sub(prev_t)).max(1) as f64 / 1_000.0;
                let reg = rec.registry_mut();
                reg.begin_sample();
                reg.counter("queries_offered", shared.offered.load(ORD));
                reg.counter("queries_issued", shared.issued.load(ORD));
                reg.counter("queries_completed", completed);
                reg.counter("hits", shared.hits.load(ORD));
                reg.gauge(
                    "achieved_qps",
                    (completed.saturating_sub(prev_completed)) as f64 / dt_s,
                );
                reg.gauge("latency_count", shared.latency_ms.count() as f64);
                reg.gauge("latency_p50_ms", shared.latency_ms.quantile(0.50));
                reg.gauge("latency_p99_ms", shared.latency_ms.quantile(0.99));
                for (i, d) in shared.inbox_depth.iter().enumerate() {
                    reg.gauge(&format!("inbox_depth.s{i}"), d.load(ORD) as f64);
                }
                for (i, d) in shared.heap_len.iter().enumerate() {
                    reg.gauge(&format!("timer_heap.s{i}"), d.load(ORD) as f64);
                }
                rec.emit_window(now);
                prev_completed = completed;
                prev_t = now;
                next = now + interval;
            }
            if finished {
                break;
            }
            thread::sleep(Duration::from_millis(interval.min(25)));
        }
        rec.finish();
        rec.windows()
    })
}

/// Spawn the `--metrics-port` endpoint: a stdlib TCP listener on
/// `127.0.0.1:port` answering `GET /metrics` with the Prometheus text
/// snapshot and any other path with the live report as JSON. Exits when
/// `done` is raised. A bind failure is reported and tolerated — the run
/// itself must not die because a port is taken.
pub(crate) fn spawn_endpoint(shared: Arc<MonitorShared>, port: u16) -> JoinHandle<()> {
    thread::spawn(move || {
        let listener = match TcpListener::bind(("127.0.0.1", port)) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("[serve] --metrics-port {port}: bind failed ({e}); endpoint disabled");
                return;
            }
        };
        listener
            .set_nonblocking(true)
            .expect("set_nonblocking on metrics listener");
        while !shared.done.load(ORD) {
            match listener.accept() {
                Ok((mut stream, _peer)) => {
                    stream
                        .set_read_timeout(Some(Duration::from_millis(200)))
                        .ok();
                    let mut req = [0u8; 1024];
                    let n = stream.read(&mut req).unwrap_or(0);
                    let head = String::from_utf8_lossy(&req[..n]);
                    let want_prometheus = head
                        .lines()
                        .next()
                        .map(|l| l.contains("/metrics"))
                        .unwrap_or(false);
                    let (ctype, body) = if want_prometheus {
                        ("text/plain; version=0.0.4", shared.prometheus_text())
                    } else {
                        ("application/json", shared.report_json())
                    };
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    );
                    stream.write_all(resp.as_bytes()).ok();
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_hist_matches_log_histogram_geometry() {
        let h = AtomicLogHist::default();
        let mut reference = ddr_telemetry::LogHistogram::default();
        for v in [0.0, 0.5, 1.0, 3.0, 100.0, 1000.0, 4096.0] {
            h.record(v);
            reference.record(v);
        }
        assert_eq!(h.count(), reference.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), reference.quantile(q), "q={q}");
        }
    }

    #[test]
    fn prometheus_and_json_snapshots_render() {
        let s = MonitorShared::new(2);
        s.offered.store(10, ORD);
        s.completed.store(8, ORD);
        s.hits.store(4, ORD);
        s.inbox_depth[1].store(7, ORD);
        s.latency_ms.record(12.0);
        let text = s.prometheus_text();
        assert!(text.contains("ddr_serve_queries_completed 8"));
        assert!(text.contains("ddr_serve_inbox_depth{shard=\"1\"} 7"));
        let json = s.report_json();
        assert!(json.contains("\"hit_rate\":0.5"), "{json}");
        // Both shards appear in the depth arrays.
        assert!(json.contains("\"inbox_depth\":[0,7]"), "{json}");
        serde::json::parse(&json).expect("report JSON parses");
    }

    #[test]
    fn endpoint_serves_both_content_types() {
        let s = Arc::new(MonitorShared::new(1));
        s.completed.store(3, ORD);
        // Pick an ephemeral port by binding first, then freeing it.
        let probe = TcpListener::bind(("127.0.0.1", 0)).expect("probe bind");
        let port = probe.local_addr().expect("probe addr").port();
        drop(probe);
        let handle = spawn_endpoint(Arc::clone(&s), port);
        let fetch = |path: &str| -> String {
            for _ in 0..50 {
                if let Ok(mut c) = std::net::TcpStream::connect(("127.0.0.1", port)) {
                    c.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                        .expect("write request");
                    let mut out = String::new();
                    c.read_to_string(&mut out).expect("read response");
                    return out;
                }
                thread::sleep(Duration::from_millis(10));
            }
            panic!("endpoint never came up on port {port}");
        };
        let prom = fetch("/metrics");
        assert!(prom.contains("ddr_serve_queries_completed 3"), "{prom}");
        let json = fetch("/report");
        assert!(json.contains("\"queries_completed\":3"), "{json}");
        s.done.store(true, ORD);
        handle.join().expect("endpoint thread");
    }
}
