//! The deterministic backend: drive a fleet of [`GnutellaNode`]s
//! through the calendar-queue DES.
//!
//! This is the "SimTransport adapter" side of the sim/serve duality:
//! the same `NodeBehavior` the bus shards across threads runs here
//! single-threaded under virtual time, so its outcomes are a pure
//! function of `(config, seed)`. The parity test compares this
//! backend's hit rate and message counts against the wall-clock bus.

use ddr_core::runtime::{Clock, NodeBehavior, Transport};
use ddr_gnutella::{build_nodes, GnutellaNode, NodeMsg, NodeSetConfig};
use ddr_sim::{EventQueue, NodeId, QueryId, Scheduler, SimDuration, SimTime};

use crate::percentile;

/// A routed message: the DES event is the envelope, the bus's channel
/// payload is its exact analogue.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    pub to: NodeId,
    pub from: NodeId,
    pub msg: NodeMsg,
}

/// Context adapter: `Clock`/`Transport` over the sim scheduler, routing
/// envelopes on behalf of the node currently handling a message.
struct SimCtx<'a, 'b> {
    sched: &'a mut Scheduler<'b, Delivery>,
    me: NodeId,
}

impl Clock<NodeMsg> for SimCtx<'_, '_> {
    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn schedule_after(&mut self, delay: SimDuration, msg: NodeMsg) {
        let me = self.me;
        self.sched.after(
            delay,
            Delivery {
                to: me,
                from: me,
                msg,
            },
        );
    }

    fn schedule_at(&mut self, at: SimTime, msg: NodeMsg) {
        let me = self.me;
        self.sched.at(
            at,
            Delivery {
                to: me,
                from: me,
                msg,
            },
        );
    }
}

impl Transport<NodeMsg> for SimCtx<'_, '_> {
    fn send(&mut self, to: NodeId, delay: SimDuration, msg: NodeMsg) {
        let from = self.me;
        self.sched.after(delay, Delivery { to, from, msg });
    }
}

/// Aggregate outcome of a deterministic fleet run.
#[derive(Debug, Clone)]
pub struct SimFleetReport {
    pub queries_issued: u64,
    pub queries_completed: u64,
    pub hits: u64,
    pub messages: u64,
    pub duplicates: u64,
    pub p50_first_ms: Option<f64>,
    pub p99_first_ms: Option<f64>,
}

impl SimFleetReport {
    /// Fraction of completed queries with at least one result.
    pub fn hit_rate(&self) -> f64 {
        if self.queries_completed == 0 {
            0.0
        } else {
            self.hits as f64 / self.queries_completed as f64
        }
    }

    /// Protocol messages per issued query.
    pub fn messages_per_query(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.messages as f64 / self.queries_issued as f64
        }
    }
}

/// Build the fleet and run `queries` injections spaced `interval`
/// apart, round-robin over the nodes, until the event queue drains.
/// Deterministic in `(cfg, queries, interval)`.
pub fn run_deterministic(
    cfg: &NodeSetConfig,
    queries: u64,
    interval: SimDuration,
) -> SimFleetReport {
    let mut nodes: Vec<GnutellaNode> = build_nodes(cfg);
    let mut queue: EventQueue<Delivery> = EventQueue::new();
    for q in 0..queries {
        let to = NodeId::from_index((q % cfg.nodes as u64) as usize);
        queue.schedule_at(
            SimTime::ZERO + interval.saturating_mul(q),
            Delivery {
                to,
                from: to,
                msg: NodeMsg::Issue { query: QueryId(q) },
            },
        );
    }
    while let Some((_, env)) = queue.pop() {
        let mut sched = queue.scheduler();
        let mut ctx = SimCtx {
            sched: &mut sched,
            me: env.to,
        };
        nodes[env.to.index()].on_message(env.from, env.msg, &mut ctx);
    }

    let mut completed = 0u64;
    let mut hits = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut messages = 0u64;
    let mut duplicates = 0u64;
    for node in &mut nodes {
        messages += node.counters.messages_sent;
        duplicates += node.counters.duplicates_dropped;
        for done in node.take_completed() {
            completed += 1;
            if let Some((_, at, _)) = done.first {
                hits += 1;
                latencies.push(at.saturating_since(done.issued_at).as_millis() as f64);
            }
        }
    }
    let p50 = percentile(&mut latencies, 50.0);
    let p99 = percentile(&mut latencies, 99.0);
    SimFleetReport {
        queries_issued: queries,
        queries_completed: completed,
        hits,
        messages,
        duplicates,
        p50_first_ms: p50,
        p99_first_ms: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_fleet_is_reproducible() {
        let cfg = NodeSetConfig::new(80, 21);
        let a = run_deterministic(&cfg, 200, SimDuration::from_millis(40));
        let b = run_deterministic(&cfg, 200, SimDuration::from_millis(40));
        assert_eq!(a.queries_completed, b.queries_completed);
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.p99_first_ms, b.p99_first_ms);
        assert_eq!(a.queries_completed, 200, "every injection finalizes");
    }

    #[test]
    fn fleet_finds_results_through_the_overlay() {
        let cfg = NodeSetConfig::new(120, 5);
        let r = run_deterministic(&cfg, 400, SimDuration::from_millis(25));
        assert!(r.hit_rate() > 0.05, "hit rate {:.3} too low", r.hit_rate());
        assert!(r.messages_per_query() >= 1.0);
        assert!(r.p50_first_ms.is_some());
    }
}
