//! # ddr-serve — the real-time backend for `NodeBehavior` fleets
//!
//! The discrete-event simulator answers "what would the paper's
//! protocol do over six virtual hours"; this crate answers "how many
//! queries per second does the same per-node state machine sustain on
//! this hardware". Both drive the identical
//! [`ddr_gnutella::GnutellaNode`] through the
//! `ddr_core::runtime::transport` traits:
//!
//! * [`sim_backend`] — a single-threaded, deterministic driver over the
//!   calendar-queue DES (`SimTransport`). Pure function of
//!   `(config, seed)`; the sim/serve parity test pins the two backends
//!   against each other with it.
//! * [`bus`] — the production-shaped engine: nodes sharded across
//!   worker threads by `node_id % shards`, bounded channels between
//!   shards, per-shard timer heaps, a wall-clock [`bus::WallClock`],
//!   and a self-pacing load generator injecting queries at a target
//!   rate. Reports queries/sec/core, hit rate and p50/p99 first-result
//!   latency; completed query spans go through `ddr-telemetry`'s
//!   `QueryTracer`, so `ddr inspect` reads serve traces exactly like
//!   sim traces.
//!
//! Wall-clock scheduling makes the bus non-deterministic (arrival
//! interleavings vary run to run); see EXPERIMENTS.md "Serve-backend
//! determinism" for what is and is not reproducible.

pub mod bus;
pub mod monitor;
pub mod sim_backend;

pub use bus::{run_gnutella, run_gnutella_traced, ServeConfig, ServeReport, WallClock};
pub use monitor::MonitorShared;
pub use sim_backend::{run_deterministic, SimFleetReport};

/// Percentile over an unsorted sample set (nearest-rank); `None` when
/// empty. Shared by both backends' latency reporting.
pub(crate) fn percentile(samples: &mut [f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize - 1;
    Some(samples[rank.min(samples.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_nearest_rank() {
        let mut s = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&mut s, 50.0), Some(20.0));
        assert_eq!(percentile(&mut s, 99.0), Some(40.0));
        assert_eq!(percentile([].as_mut_slice(), 50.0), None);
        let mut one = vec![7.0];
        assert_eq!(percentile(&mut one, 99.0), Some(7.0));
    }
}
