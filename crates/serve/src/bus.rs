//! The real-time backend: a sharded in-process message bus driving
//! [`GnutellaNode`]s under wall-clock time and synthetic query load.
//!
//! Architecture:
//!
//! * Nodes are partitioned across `shards` worker threads by
//!   `node_id % shards`; each shard owns its nodes exclusively, so no
//!   node state is ever shared or locked.
//! * Each shard has one bounded [`mpsc::sync_channel`] inbox. A message
//!   carries its *delivery deadline* (`Envelope::at`, wall time since
//!   run start): the sending node's `Transport::send` adds the modelled
//!   network delay, the receiving shard parks the envelope in a local
//!   timer heap and delivers it when the [`WallClock`] catches up — the
//!   exact analogue of the DES calendar queue, with real elapsed time
//!   as the event clock.
//! * Cross-shard sends use `try_send`; a full inbox spills into the
//!   sender's outbox for retry instead of blocking, so two shards
//!   flooding each other cannot deadlock.
//! * A self-pacing load generator on the caller's thread injects
//!   `NodeMsg::Issue` envelopes round-robin at the target rate, then
//!   the shards drain in-flight queries for one collection window
//!   before stopping.
//!
//! Completed-query spans go through `ddr-telemetry`'s `QueryTracer`
//! (one per shard, appending to the shared JSONL file), so
//! `ddr inspect` reads a serve trace exactly like a sim trace.
//! Wall-clock delivery makes run-to-run interleavings — and therefore
//! exact message counts — non-deterministic; see EXPERIMENTS.md
//! "Serve-backend determinism".

use crate::monitor::{spawn_endpoint, spawn_monitor, MonitorShared};
use ddr_core::runtime::{Clock, NodeBehavior, Transport};
use ddr_gnutella::{build_nodes, GnutellaNode, NodeMsg, NodeSetConfig, QueryOutcome};
use ddr_sim::{NodeId, QueryId, SimDuration, SimTime};
use ddr_telemetry::{JsonlSink, NullSink, QueryTracer, TelemetryConfig, TraceOutcome, TraceSink};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::Ordering as AtomicOrd;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Inbox depth per shard. Deep enough that a flood burst (degree ×
/// in-flight queries) never blocks the sender in practice; the outbox
/// retry path covers the pathological case.
const INBOX_DEPTH: usize = 65_536;

/// Extra wall time past the last collection window before shards stop,
/// covering network-delay stragglers still in flight to a finalizer.
const DRAIN_GRACE: SimDuration = SimDuration::from_millis(500);

/// Wall-clock time source for the serve backend, reporting elapsed
/// milliseconds since run start as a [`SimTime`] so node logic sees the
/// same time type under both engines.
#[derive(Debug, Clone)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Start the clock now.
    pub fn start() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    /// Elapsed wall time since start, at millisecond resolution.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.start.elapsed().as_millis() as u64)
    }
}

/// Configuration of a serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Fleet shape (size, degree, hops, collection window, seed).
    pub node_set: NodeSetConfig,
    /// Offered load, queries per second across the whole fleet.
    pub qps: f64,
    /// Injection window, wall seconds. Shards keep draining for one
    /// collection window past this before stopping.
    pub duration_s: f64,
    /// Worker-thread count; nodes are owned `node_id % shards`.
    pub shards: usize,
    /// Tracing config (path, sampling, run label) for the traced entry
    /// point; ignored under [`run_gnutella`]'s `NullSink`. When
    /// `telemetry.metrics_path` is set a monitor thread samples the bus
    /// into a timeline file at `monitor_interval_ms`.
    pub telemetry: TelemetryConfig,
    /// When set, a stdlib TCP endpoint on `127.0.0.1:port` serves the
    /// live Prometheus-text snapshot (`/metrics`) and report JSON.
    pub metrics_port: Option<u16>,
    /// Monitor sampling period, wall milliseconds.
    pub monitor_interval_ms: u64,
}

impl ServeConfig {
    /// A serve run over `nodes` nodes at `qps` for `duration_s`, with
    /// `shards` workers and tracing off.
    pub fn new(node_set: NodeSetConfig, qps: f64, duration_s: f64, shards: usize) -> Self {
        ServeConfig {
            node_set,
            qps,
            duration_s,
            shards: shards.max(1),
            telemetry: TelemetryConfig::default(),
            metrics_port: None,
            monitor_interval_ms: 250,
        }
    }
}

/// What a serve run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    pub nodes: usize,
    pub shards: usize,
    pub offered_qps: f64,
    pub duration_s: f64,
    /// Envelopes the load generator handed to the bus.
    pub queries_offered: u64,
    /// Issue messages actually delivered to nodes.
    pub queries_issued: u64,
    /// Queries whose collection window closed before shutdown.
    pub queries_completed: u64,
    /// Completed queries with at least one result.
    pub hits: u64,
    /// Protocol messages sent by nodes (floods + replies).
    pub messages: u64,
    /// Duplicate floods suppressed.
    pub duplicates: u64,
    /// Wall time from clock start to the last shard stopping.
    pub elapsed_s: f64,
    /// Completed queries over the injection window.
    pub achieved_qps: f64,
    /// `achieved_qps / shards` — the per-core throughput figure.
    pub qps_per_core: f64,
    /// `hits / queries_completed`.
    pub hit_rate: f64,
    pub p50_first_ms: Option<f64>,
    pub p99_first_ms: Option<f64>,
}

/// A routed message with its wall-clock delivery deadline.
#[derive(Debug, Clone, Copy)]
struct Envelope {
    at: SimTime,
    to: NodeId,
    from: NodeId,
    msg: NodeMsg,
}

/// Heap entry: earliest `(at, seq)` first (reversed for `BinaryHeap`);
/// `seq` is assigned by the owning shard so same-instant deliveries
/// stay FIFO, matching the DES kernel's tie-break contract.
struct Due {
    at: SimTime,
    seq: u64,
    env: Envelope,
}

impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// `Clock`/`Transport` context handed to a node while it handles one
/// message. Sends are *staged* (the node holds `&mut self` while the
/// shard owns the routing tables) and routed by the shard afterwards.
struct ShardCtx<'a> {
    now: SimTime,
    me: NodeId,
    staged: &'a mut Vec<Envelope>,
}

impl Clock<NodeMsg> for ShardCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_after(&mut self, delay: SimDuration, msg: NodeMsg) {
        let me = self.me;
        self.staged.push(Envelope {
            at: self.now + delay,
            to: me,
            from: me,
            msg,
        });
    }

    fn schedule_at(&mut self, at: SimTime, msg: NodeMsg) {
        let me = self.me;
        self.staged.push(Envelope {
            at: at.max(self.now),
            to: me,
            from: me,
            msg,
        });
    }
}

impl Transport<NodeMsg> for ShardCtx<'_> {
    fn send(&mut self, to: NodeId, delay: SimDuration, msg: NodeMsg) {
        let from = self.me;
        self.staged.push(Envelope {
            at: self.now + delay,
            to,
            from,
            msg,
        });
    }
}

/// Aggregates a shard hands back when it stops.
struct ShardResult {
    queries_issued: u64,
    messages: u64,
    duplicates: u64,
    outcomes: Vec<QueryOutcome>,
}

struct Shard {
    index: usize,
    nshards: usize,
    /// Nodes this shard owns, indexed `global_index / nshards`.
    nodes: Vec<GnutellaNode>,
    heap: BinaryHeap<Due>,
    seq: u64,
    rx: Receiver<Envelope>,
    peers: Vec<SyncSender<Envelope>>,
    /// Cross-shard envelopes bounced by a full inbox, retried each turn.
    outbox: VecDeque<(usize, Envelope)>,
    staged: Vec<Envelope>,
    /// Live-introspection state; `None` keeps every hot-path branch a
    /// predictable not-taken jump.
    monitor: Option<Arc<MonitorShared>>,
    /// Outcomes drained mid-run for the monitor, replayed into the
    /// end-of-run report so monitored and unmonitored runs report the
    /// same fields.
    stash: Vec<QueryOutcome>,
}

impl Shard {
    fn route(&mut self, env: Envelope) {
        let target = env.to.index() % self.nshards;
        if target == self.index {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Due {
                at: env.at,
                seq,
                env,
            });
            return;
        }
        match self.peers[target].try_send(env) {
            Ok(()) => {
                if let Some(m) = &self.monitor {
                    m.inbox_depth[target].fetch_add(1, AtomicOrd::Relaxed);
                }
            }
            Err(TrySendError::Full(env)) => self.outbox.push_back((target, env)),
            // The peer already stopped (drain deadline passed there);
            // the message could never complete a query anyway.
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    fn flush_outbox(&mut self) {
        for _ in 0..self.outbox.len() {
            let (target, env) = self.outbox.pop_front().expect("len-bounded pop");
            match self.peers[target].try_send(env) {
                Ok(()) => {
                    if let Some(m) = &self.monitor {
                        m.inbox_depth[target].fetch_add(1, AtomicOrd::Relaxed);
                    }
                }
                Err(TrySendError::Full(env)) => self.outbox.push_back((target, env)),
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }

    /// One received envelope's monitor bookkeeping (inbox shrank by one).
    fn note_recv(&self) {
        if let Some(m) = &self.monitor {
            m.inbox_depth[self.index].fetch_sub(1, AtomicOrd::Relaxed);
        }
    }

    /// Drain outcomes the node finished during this delivery into the
    /// stash, feeding the monitor's counters as they happen.
    fn drain_completed(&mut self, local: usize) {
        let Some(m) = self.monitor.clone() else {
            return;
        };
        for done in self.nodes[local].take_completed() {
            m.completed.fetch_add(1, AtomicOrd::Relaxed);
            if let Some((_, at, _)) = done.first {
                m.hits.fetch_add(1, AtomicOrd::Relaxed);
                m.latency_ms
                    .record(at.saturating_since(done.issued_at).as_millis() as f64);
            }
            self.stash.push(done);
        }
    }

    fn deliver(&mut self, env: Envelope, now: SimTime) {
        let local = env.to.index() / self.nshards;
        let mut staged = std::mem::take(&mut self.staged);
        let mut ctx = ShardCtx {
            now,
            me: env.to,
            staged: &mut staged,
        };
        self.nodes[local].on_message(env.from, env.msg, &mut ctx);
        self.staged = staged;
        let drained: Vec<Envelope> = self.staged.drain(..).collect();
        for out in drained {
            self.route(out);
        }
    }

    /// The shard main loop: drain the inbox, deliver due envelopes,
    /// retry bounced sends, sleep until the next deadline. Runs until
    /// the wall clock passes `deadline`.
    fn run(
        mut self,
        clock: Arc<WallClock>,
        deadline: SimTime,
    ) -> (Vec<GnutellaNode>, u64, Vec<QueryOutcome>) {
        let mut delivered_issues = 0u64;
        loop {
            while let Ok(env) = self.rx.try_recv() {
                self.note_recv();
                self.route(env);
            }
            let now = clock.now();
            if now >= deadline {
                break;
            }
            while let Some(top) = self.heap.peek() {
                if top.at > now {
                    break;
                }
                let due = self.heap.pop().expect("peeked entry vanished");
                if matches!(due.env.msg, NodeMsg::Issue { .. }) {
                    delivered_issues += 1;
                    if let Some(m) = &self.monitor {
                        m.issued.fetch_add(1, AtomicOrd::Relaxed);
                    }
                }
                let local = due.env.to.index() / self.nshards;
                self.deliver(due.env, now);
                if self.monitor.is_some() {
                    self.drain_completed(local);
                }
            }
            if let Some(m) = &self.monitor {
                m.heap_len[self.index].store(self.heap.len(), AtomicOrd::Relaxed);
            }
            self.flush_outbox();
            // Sleep until the next timer or the next inbox arrival,
            // capped so the deadline check stays responsive.
            let next_gap = self
                .heap
                .peek()
                .map(|d| d.at.saturating_since(now).as_millis())
                .unwrap_or(u64::MAX)
                .clamp(1, 2);
            match self.rx.recv_timeout(Duration::from_millis(next_gap)) {
                Ok(env) => {
                    self.note_recv();
                    self.route(env);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                // All senders gone: only timers remain, pace manually.
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
        (self.nodes, delivered_issues, self.stash)
    }
}

/// Run the serve bus without tracing.
pub fn run_gnutella(cfg: &ServeConfig) -> ServeReport {
    run_bus::<NullSink>(cfg)
}

/// Run the serve bus, tracing completed query spans to
/// `cfg.telemetry.trace_path` in the same JSONL schema the simulator
/// emits (so `ddr inspect` works unchanged).
pub fn run_gnutella_traced(cfg: &ServeConfig) -> ServeReport {
    run_bus::<JsonlSink>(cfg)
}

fn run_bus<T: TraceSink + Send + 'static>(cfg: &ServeConfig) -> ServeReport {
    let nshards = cfg.shards.clamp(1, cfg.node_set.nodes.max(1));
    let nodes = build_nodes(&cfg.node_set);
    let n = nodes.len();

    let mut txs: Vec<SyncSender<Envelope>> = Vec::with_capacity(nshards);
    let mut rxs: Vec<Receiver<Envelope>> = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let (tx, rx) = mpsc::sync_channel(INBOX_DEPTH);
        txs.push(tx);
        rxs.push(rx);
    }

    // Partition nodes: shard s owns global indices { i | i % nshards == s },
    // stored in increasing order so local index is i / nshards.
    let mut per_shard: Vec<Vec<GnutellaNode>> = (0..nshards).map(|_| Vec::new()).collect();
    for (i, node) in nodes.into_iter().enumerate() {
        per_shard[i % nshards].push(node);
    }

    let clock = Arc::new(WallClock::start());
    let deadline = SimTime::from_millis((cfg.duration_s * 1_000.0) as u64)
        + cfg.node_set.query_timeout
        + DRAIN_GRACE;

    // Live introspection: shared atomics plus a monitor and/or endpoint
    // thread, only when asked for — otherwise every branch stays `None`.
    let monitor = (cfg.telemetry.metrics_path.is_some() || cfg.metrics_port.is_some())
        .then(|| Arc::new(MonitorShared::new(nshards)));
    let monitor_handle = monitor
        .as_ref()
        .filter(|_| cfg.telemetry.metrics_path.is_some())
        .map(|m| {
            spawn_monitor(
                Arc::clone(m),
                Arc::clone(&clock),
                cfg.telemetry.clone(),
                cfg.monitor_interval_ms,
            )
        });
    let endpoint_handle = match (&monitor, cfg.metrics_port) {
        (Some(m), Some(port)) => Some(spawn_endpoint(Arc::clone(m), port)),
        _ => None,
    };

    let mut handles = Vec::with_capacity(nshards);
    for (index, (owned, rx)) in per_shard.into_iter().zip(rxs).enumerate() {
        let shard = Shard {
            index,
            nshards,
            nodes: owned,
            heap: BinaryHeap::new(),
            seq: 0,
            rx,
            peers: txs.clone(),
            outbox: VecDeque::new(),
            staged: Vec::new(),
            monitor: monitor.clone(),
            stash: Vec::new(),
        };
        let clock = Arc::clone(&clock);
        let telemetry = cfg.telemetry.clone();
        let shared = monitor.clone();
        handles.push(thread::spawn(move || {
            let (mut nodes, delivered_issues, stash) = shard.run(clock, deadline);
            let mut result = ShardResult {
                queries_issued: delivered_issues,
                messages: 0,
                duplicates: 0,
                outcomes: stash,
            };
            let mut tracer: QueryTracer<T> = QueryTracer::new(&telemetry);
            for node in &mut nodes {
                result.messages += node.counters.messages_sent;
                result.duplicates += node.counters.duplicates_dropped;
                for done in node.take_completed() {
                    // Outcomes still parked on the node at shutdown were
                    // never seen by the mid-run drain; count them so the
                    // monitor's totals equal the final report.
                    if let Some(m) = &shared {
                        m.completed.fetch_add(1, AtomicOrd::Relaxed);
                        if let Some((_, at, _)) = done.first {
                            m.hits.fetch_add(1, AtomicOrd::Relaxed);
                            m.latency_ms
                                .record(at.saturating_since(done.issued_at).as_millis() as f64);
                        }
                    }
                    result.outcomes.push(done);
                }
            }
            for done in &result.outcomes {
                trace_outcome(&mut tracer, done);
            }
            result
        }));
    }

    // ---- load generator (caller's thread) --------------------------------
    // Self-pacing: each tick computes how many queries the elapsed time
    // entitles the run to and catches up, so short stalls borrow from
    // the next tick instead of skewing the offered rate.
    let mut offered = 0u64;
    loop {
        let elapsed_s = clock.now().as_millis() as f64 / 1_000.0;
        if elapsed_s >= cfg.duration_s {
            break;
        }
        let target = (elapsed_s * cfg.qps) as u64;
        while offered < target {
            let node = NodeId::from_index((offered % n as u64) as usize);
            let env = Envelope {
                at: clock.now(),
                to: node,
                from: node,
                msg: NodeMsg::Issue {
                    query: QueryId(offered),
                },
            };
            if txs[node.index() % nshards].send(env).is_err() {
                break;
            }
            offered += 1;
            if let Some(m) = &monitor {
                m.offered.fetch_add(1, AtomicOrd::Relaxed);
                m.inbox_depth[node.index() % nshards].fetch_add(1, AtomicOrd::Relaxed);
            }
        }
        thread::sleep(Duration::from_micros(500));
    }
    drop(txs);

    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut hits = 0u64;
    let mut messages = 0u64;
    let mut duplicates = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    for handle in handles {
        let r = handle.join().expect("shard thread panicked");
        issued += r.queries_issued;
        messages += r.messages;
        duplicates += r.duplicates;
        for done in r.outcomes {
            completed += 1;
            if let Some((_, at, _)) = done.first {
                hits += 1;
                latencies.push(at.saturating_since(done.issued_at).as_millis() as f64);
            }
        }
    }
    // All shard threads are joined: the monitor atomics are final. Raise
    // `done` so the monitor emits its closing window (whose column sums
    // now equal this report) and the endpoint stops accepting.
    if let Some(m) = &monitor {
        m.done.store(true, AtomicOrd::Relaxed);
    }
    if let Some(h) = monitor_handle {
        h.join().expect("monitor thread panicked");
    }
    if let Some(h) = endpoint_handle {
        h.join().expect("metrics endpoint thread panicked");
    }

    let elapsed_s = clock.now().as_millis() as f64 / 1_000.0;
    let achieved_qps = if cfg.duration_s > 0.0 {
        completed as f64 / cfg.duration_s
    } else {
        0.0
    };
    let p50 = crate::percentile(&mut latencies, 50.0);
    let p99 = crate::percentile(&mut latencies, 99.0);
    ServeReport {
        nodes: n,
        shards: nshards,
        offered_qps: cfg.qps,
        duration_s: cfg.duration_s,
        queries_offered: offered,
        queries_issued: issued,
        queries_completed: completed,
        hits,
        messages,
        duplicates,
        elapsed_s,
        achieved_qps,
        qps_per_core: achieved_qps / nshards as f64,
        hit_rate: if completed == 0 {
            0.0
        } else {
            hits as f64 / completed as f64
        },
        p50_first_ms: p50,
        p99_first_ms: p99,
    }
}

/// Emit one completed query's span (issue → optional first → end) with
/// the timestamps the node recorded at delivery time. Replaying the
/// span at drain time keeps the tracer single-threaded per shard while
/// preserving wall-accurate latencies.
fn trace_outcome<T: TraceSink>(tracer: &mut QueryTracer<T>, done: &QueryOutcome) {
    if !QueryTracer::<T>::enabled() {
        return;
    }
    tracer.issue(
        done.issued_at,
        done.query,
        done.node,
        done.item.index() as u64,
        done.ttl,
    );
    let outcome = if done.results > 0 {
        TraceOutcome::Hit
    } else {
        TraceOutcome::Miss
    };
    if let Some((from, at, hops)) = done.first {
        let latency = at.saturating_since(done.issued_at).as_millis() as f64;
        tracer.first(at, done.query, from, hops, latency);
    }
    let total = done
        .finished_at
        .saturating_since(done.issued_at)
        .as_millis() as f64;
    tracer.finish(
        done.finished_at,
        done.query,
        outcome,
        done.results as u64,
        total,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(nodes: usize, seed: u64, qps: f64, duration_s: f64, shards: usize) -> ServeConfig {
        let mut node_set = NodeSetConfig::new(nodes, seed);
        // Short collection window so the drain phase stays test-sized.
        node_set.query_timeout = SimDuration::from_millis(300);
        ServeConfig::new(node_set, qps, duration_s, shards)
    }

    #[test]
    fn bus_completes_queries_under_load() {
        let cfg = quick_cfg(64, 11, 400.0, 0.5, 2);
        let r = run_gnutella(&cfg);
        assert_eq!(r.nodes, 64);
        assert_eq!(r.shards, 2);
        assert!(r.queries_offered > 0, "load generator never fired");
        assert!(
            r.queries_completed > 0,
            "no query survived to its collection window"
        );
        // Issues are delivered reliably inside one process.
        assert_eq!(r.queries_issued, r.queries_offered);
        assert!(r.messages > 0);
        assert!(r.hit_rate >= 0.0 && r.hit_rate <= 1.0);
        if r.hits > 0 {
            let p50 = r.p50_first_ms.expect("hits imply latency samples");
            let p99 = r.p99_first_ms.expect("hits imply latency samples");
            assert!(p50 <= p99);
        }
    }

    #[test]
    fn traced_bus_writes_inspectable_spans() {
        let dir = std::env::temp_dir().join(format!("ddr-serve-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("serve.jsonl");
        let mut cfg = quick_cfg(48, 5, 300.0, 0.4, 2);
        cfg.telemetry = TelemetryConfig {
            trace_path: Some(path.clone()),
            sample: 1,
            run_label: "ServeSmoke",
            ..TelemetryConfig::default()
        };
        let r = run_gnutella_traced(&cfg);
        assert!(r.queries_completed > 0);
        let summary = ddr_telemetry::summarize_file(&path).expect("trace must parse");
        assert_eq!(
            summary.spans, r.queries_completed,
            "one span per completed query"
        );
        assert!(summary.is_complete(), "every serve span must be closed");
        std::fs::remove_file(&path).ok();
    }

    /// The monitor thread is purely observational: its cumulative
    /// counters must agree exactly with the end-of-run report, and the
    /// timeline file's per-window deltas must sum back to those same
    /// totals — i.e. turning the monitor on changes what is *written*,
    /// never what is *reported*.
    #[test]
    fn monitor_does_not_perturb_the_report() {
        let dir = std::env::temp_dir().join(format!("ddr-serve-mon-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("timeline.jsonl");
        let mut cfg = quick_cfg(48, 7, 300.0, 0.4, 2);
        cfg.telemetry.metrics_path = Some(path.clone());
        cfg.monitor_interval_ms = 50;
        let r = run_gnutella(&cfg);
        assert!(r.queries_completed > 0, "run produced no completions");

        let text = std::fs::read_to_string(&path).expect("timeline file written");
        let mut sum_completed = 0u64;
        let mut sum_hits = 0u64;
        let mut sum_offered = 0u64;
        let mut windows = 0u64;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = serde::json::parse(line).expect("window record parses");
            let counters = v.get("counters").expect("counters object");
            let num = |k: &str| counters.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
            sum_completed += num("queries_completed");
            sum_hits += num("hits");
            sum_offered += num("queries_offered");
            windows += 1;
        }
        assert!(windows >= 2, "expected several windows, got {windows}");
        assert_eq!(sum_completed, r.queries_completed, "completed parity");
        assert_eq!(sum_hits, r.hits, "hits parity");
        assert_eq!(sum_offered, r.queries_offered, "offered parity");
        // The report's derived fields are internally consistent — the
        // monitor did not leak into their computation.
        assert!((r.achieved_qps - r.queries_completed as f64 / r.duration_s).abs() < 1e-9);
        if r.queries_completed > 0 {
            assert!((r.hit_rate - r.hits as f64 / r.queries_completed as f64).abs() < 1e-9);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_shard_degenerate_case_works() {
        let cfg = quick_cfg(16, 3, 150.0, 0.3, 1);
        let r = run_gnutella(&cfg);
        assert_eq!(r.shards, 1);
        assert!(r.queries_completed > 0);
    }
}
