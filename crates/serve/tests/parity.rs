//! Sim/serve parity: the same `GnutellaNode` fleet, driven once through
//! the deterministic DES backend and once through the wall-clock bus,
//! must agree on protocol-level behaviour.
//!
//! Both backends build from one `NodeSetConfig`, so topology, libraries
//! and per-node RNG streams are identical; only delivery order differs
//! (virtual calendar queue vs. real threads and channels). Exact
//! message counts therefore differ run to run on the bus side — the
//! assertions use aggregate tolerances, not equality. See
//! EXPERIMENTS.md "Serve-backend determinism".

use ddr_gnutella::NodeSetConfig;
use ddr_serve::{run_deterministic, run_gnutella, ServeConfig};
use ddr_sim::SimDuration;

#[test]
fn sim_and_bus_agree_on_hit_rate_and_message_volume() {
    let mut node_set = NodeSetConfig::new(100, 42);
    node_set.query_timeout = SimDuration::from_millis(500);

    let qps = 400.0;
    let duration_s = 1.0;

    // Deterministic run: the same offered load expressed in virtual
    // time — one query every 1/qps seconds, round-robin, same count the
    // load generator targets.
    let queries = (qps * duration_s) as u64;
    let interval = SimDuration::from_secs_f64(1.0 / qps);
    let sim = run_deterministic(&node_set, queries, interval);

    let bus = run_gnutella(&ServeConfig::new(node_set, qps, duration_s, 2));

    assert!(
        sim.queries_completed == queries,
        "deterministic backend must finalize every query"
    );
    assert!(
        bus.queries_completed as f64 >= 0.5 * queries as f64,
        "bus completed only {} of ~{queries} queries",
        bus.queries_completed
    );

    // Same fleet, same workload distribution: the fraction of queries
    // finding at least one holder within the hop limit must agree.
    let dh = (sim.hit_rate() - bus.hit_rate).abs();
    assert!(
        dh < 0.15,
        "hit rates diverge: sim {:.3} vs bus {:.3}",
        sim.hit_rate(),
        bus.hit_rate
    );

    // Flood fan-out per query is a topology property; thread scheduling
    // only perturbs duplicate-arrival order, so per-query message
    // volume must land in the same band.
    let sim_mpq = sim.messages_per_query();
    let bus_mpq = bus.messages as f64 / bus.queries_issued.max(1) as f64;
    assert!(
        (bus_mpq - sim_mpq).abs() / sim_mpq < 0.30,
        "messages per query diverge: sim {sim_mpq:.2} vs bus {bus_mpq:.2}"
    );
}
