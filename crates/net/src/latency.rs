//! One-way delay sampling (paper §4.2).
//!
//! "The mean value of the one-way delay between two users is governed by
//! the slowest user, and is equal to 300ms, 150ms and 70ms, respectively.
//! The standard deviation is set to 20ms for all cases, and values are
//! restricted in the interval [·]." We truncate to `mean ± 3σ` (see crate
//! docs for the substitution rationale).

use crate::bandwidth::BandwidthClass;
use ddr_sim::SimDuration;
use rand::Rng;

/// Mean/σ/truncation parameters for one bandwidth class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyParams {
    /// Mean one-way delay in milliseconds.
    pub mean_ms: f64,
    /// Standard deviation in milliseconds.
    pub std_ms: f64,
    /// Truncation half-width in standard deviations.
    pub clamp_sigmas: f64,
}

impl LatencyParams {
    /// Paper defaults for a class.
    pub const fn paper_default(class: BandwidthClass) -> LatencyParams {
        let mean_ms = match class {
            BandwidthClass::Modem56K => 300.0,
            BandwidthClass::Cable => 150.0,
            BandwidthClass::Lan => 70.0,
        };
        LatencyParams {
            mean_ms,
            std_ms: 20.0,
            clamp_sigmas: 3.0,
        }
    }

    /// Lower truncation bound in ms.
    pub fn lo(&self) -> f64 {
        (self.mean_ms - self.clamp_sigmas * self.std_ms).max(0.0)
    }

    /// Upper truncation bound in ms.
    pub fn hi(&self) -> f64 {
        self.mean_ms + self.clamp_sigmas * self.std_ms
    }
}

/// Samples one-way delays for node pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    params: [LatencyParams; 3],
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::paper()
    }
}

impl DelayModel {
    /// The paper's parameters (300/150/70 ms ± 20 ms).
    pub fn paper() -> Self {
        DelayModel {
            params: [
                LatencyParams::paper_default(BandwidthClass::Modem56K),
                LatencyParams::paper_default(BandwidthClass::Cable),
                LatencyParams::paper_default(BandwidthClass::Lan),
            ],
        }
    }

    /// Custom parameters per class (slowest first).
    pub fn with_params(params: [LatencyParams; 3]) -> Self {
        DelayModel { params }
    }

    /// Parameters governing a pair: the slower endpoint decides.
    pub fn pair_params(&self, a: BandwidthClass, b: BandwidthClass) -> LatencyParams {
        let class = a.slower(b);
        self.params[match class {
            BandwidthClass::Modem56K => 0,
            BandwidthClass::Cable => 1,
            BandwidthClass::Lan => 2,
        }]
    }

    /// Sample a one-way delay for a message between classes `a` and `b`.
    ///
    /// Standard-normal variates come from the Box–Muller transform;
    /// out-of-interval samples are clamped to the truncation bounds (the
    /// tail mass outside ±3σ is 0.27 %, so clamping rather than rejecting
    /// distorts the distribution negligibly while staying O(1)).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: BandwidthClass,
        b: BandwidthClass,
    ) -> SimDuration {
        let p = self.pair_params(a, b);
        let z = standard_normal(rng);
        let ms = (p.mean_ms + z * p.std_ms).clamp(p.lo(), p.hi());
        SimDuration::from_millis(ms.round() as u64)
    }

    /// The mean delay for a class pair, for analytic checks and expected-
    /// value baselines.
    pub fn mean(&self, a: BandwidthClass, b: BandwidthClass) -> SimDuration {
        SimDuration::from_millis(self.pair_params(a, b).mean_ms.round() as u64)
    }

    /// The smallest delay `sample` can ever return, over all class pairs.
    /// This is the natural lookahead for conservative parallel simulation:
    /// every sampled network delay is ≥ this bound.
    pub fn min_delay(&self) -> SimDuration {
        let lo = self
            .params
            .iter()
            .map(|p| p.lo())
            .fold(f64::INFINITY, f64::min);
        SimDuration::from_millis(lo.floor() as u64)
    }
}

/// One standard-normal sample via Box–Muller (the cosine branch only; the
/// sine branch is discarded to keep the sampler stateless).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pair_governed_by_slower() {
        let m = DelayModel::paper();
        assert_eq!(
            m.pair_params(BandwidthClass::Lan, BandwidthClass::Modem56K)
                .mean_ms,
            300.0
        );
        assert_eq!(
            m.pair_params(BandwidthClass::Lan, BandwidthClass::Cable)
                .mean_ms,
            150.0
        );
        assert_eq!(
            m.pair_params(BandwidthClass::Lan, BandwidthClass::Lan)
                .mean_ms,
            70.0
        );
    }

    #[test]
    fn samples_respect_truncation() {
        let m = DelayModel::paper();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20_000 {
            let d = m
                .sample(&mut rng, BandwidthClass::Modem56K, BandwidthClass::Lan)
                .as_millis();
            assert!((240..=360).contains(&d), "out of ±3σ: {d}");
        }
    }

    #[test]
    fn sample_mean_close_to_nominal() {
        let m = DelayModel::paper();
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 50_000;
        let sum: u64 = (0..n)
            .map(|_| {
                m.sample(&mut rng, BandwidthClass::Cable, BandwidthClass::Cable)
                    .as_millis()
            })
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((148.0..152.0).contains(&mean), "mean drifted: {mean}");
    }

    #[test]
    fn sample_std_close_to_nominal() {
        let m = DelayModel::paper();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000usize;
        let xs: Vec<f64> = (0..n)
            .map(|_| {
                m.sample(&mut rng, BandwidthClass::Lan, BandwidthClass::Lan)
                    .as_millis() as f64
            })
            .collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let std = var.sqrt();
        // truncation + rounding shrink σ slightly below 20
        assert!((17.0..22.0).contains(&std), "std drifted: {std}");
    }

    #[test]
    fn standard_normal_is_centred() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| standard_normal(&mut rng)).sum();
        assert!((sum / n as f64).abs() < 0.02);
    }

    #[test]
    fn lo_never_negative() {
        let p = LatencyParams {
            mean_ms: 10.0,
            std_ms: 20.0,
            clamp_sigmas: 3.0,
        };
        assert_eq!(p.lo(), 0.0);
    }

    #[test]
    fn min_delay_is_lan_floor() {
        let m = DelayModel::paper();
        // LAN: 70 − 3·20 = 10 ms is the tightest truncation bound.
        assert_eq!(m.min_delay().as_millis(), 10);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let d = m.sample(&mut rng, BandwidthClass::Lan, BandwidthClass::Lan);
            assert!(d >= m.min_delay());
        }
    }

    #[test]
    fn mean_accessor_matches_params() {
        let m = DelayModel::paper();
        assert_eq!(
            m.mean(BandwidthClass::Modem56K, BandwidthClass::Lan)
                .as_millis(),
            300
        );
    }
}
