//! # ddr-net — network model for the distributed-repository simulations
//!
//! Implements the paper's network assumptions (§4.2):
//!
//! * Every node is connected through one of three **bandwidth classes** —
//!   56K modem, cable modem, or LAN — each equally likely.
//! * The **one-way delay** between two nodes is governed by the *slower*
//!   endpoint: mean 300 ms (modem), 150 ms (cable) or 70 ms (LAN), with a
//!   standard deviation of 20 ms, truncated to `mean ± 3σ` (the paper
//!   restricts values to an interval whose bounds the scanned text garbles;
//!   ±3σ keeps > 99.7 % of the mass and guarantees positivity — recorded as
//!   a substitution in DESIGN.md).
//! * Query replies carry the responder's bandwidth class, mirroring the
//!   Gnutella Ping-Pong protocol, which is what the paper's benefit
//!   function `B / R` consumes.
//!
//! The model is a *sampled delay oracle*, not a packet simulator: each
//! message transmission independently draws a delay for the (sender,
//! receiver) class pair. That matches the paper's level of abstraction —
//! it models end-to-end latency distributions, not queueing.

pub mod bandwidth;
pub mod latency;
pub mod model;
pub mod transfer;

pub use bandwidth::{BandwidthClass, ClassMix};
pub use latency::{DelayModel, LatencyParams};
pub use model::{NetworkModel, NodeDelayStream};
pub use transfer::TransferModel;
