//! Bandwidth classes (paper §4.2: "we randomly split the users into 3
//! categories, according to their connection bandwidth; each user is
//! equally likely to be connected through a 56K modem, a cable modem or a
//! LAN").

use rand::Rng;

/// A node's access-link class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BandwidthClass {
    /// 56 kbit/s dial-up modem — slowest class, mean one-way delay 300 ms.
    Modem56K,
    /// Cable modem — mean one-way delay 150 ms.
    Cable,
    /// LAN connection — fastest class, mean one-way delay 70 ms.
    Lan,
}

impl BandwidthClass {
    /// All classes, slowest first.
    pub const ALL: [BandwidthClass; 3] = [
        BandwidthClass::Modem56K,
        BandwidthClass::Cable,
        BandwidthClass::Lan,
    ];

    /// Nominal link rate in kbit/s. Used by the paper's benefit function
    /// `B / R` (B = "the bandwidth of the answering link") and by the
    /// download-time model.
    #[inline]
    pub const fn kbps(self) -> u32 {
        match self {
            BandwidthClass::Modem56K => 56,
            BandwidthClass::Cable => 1_500,
            BandwidthClass::Lan => 10_000,
        }
    }

    /// The benefit weight `B` in the paper's `B / R` score, normalised so
    /// the slowest class is 1.0.
    ///
    /// Operationalised through the class's mean one-way delay
    /// (300/150/70 ms → 1 : 2 : 4.3) rather than the raw link rate: the
    /// raw 56 k : 1.5 M : 10 M ratio (1 : 27 : 179) would let bandwidth
    /// utterly dominate the content-similarity signal, and what a
    /// downloading user actually experiences is bounded by end-to-end
    /// delay classes, not the nominal line rate. The raw-rate variant is
    /// available as [`BandwidthClass::raw_rate_weight`] and compared in
    /// the `ddr-bench` ablations.
    #[inline]
    pub fn benefit_weight(self) -> f64 {
        match self {
            BandwidthClass::Modem56K => 1.0,
            BandwidthClass::Cable => 2.0,
            BandwidthClass::Lan => 300.0 / 70.0,
        }
    }

    /// The raw line-rate benefit weight (1 : 26.8 : 178.6) — ablation
    /// alternative to [`BandwidthClass::benefit_weight`].
    #[inline]
    pub fn raw_rate_weight(self) -> f64 {
        self.kbps() as f64 / BandwidthClass::Modem56K.kbps() as f64
    }

    /// The slower of two classes — the paper says the delay between two
    /// users "is governed by the slowest user".
    #[inline]
    pub fn slower(self, other: BandwidthClass) -> BandwidthClass {
        self.min(other)
    }

    /// Sample a class uniformly (each equally likely, per the paper).
    pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> BandwidthClass {
        Self::ALL[rng.gen_range(0..Self::ALL.len())]
    }

    /// Short label for tables and traces.
    pub const fn label(self) -> &'static str {
        match self {
            BandwidthClass::Modem56K => "56K",
            BandwidthClass::Cable => "cable",
            BandwidthClass::Lan => "LAN",
        }
    }
}

/// A weighted mix over the three bandwidth classes — the "bandwidth era"
/// knob of the adversarial scenario pack. The paper's uniform 1/3 split
/// models 2003; the eras dial the population back to dial-up dominance or
/// forward to fibre dominance while keeping the delay model itself fixed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMix {
    /// Probability of [`BandwidthClass::Modem56K`].
    pub modem: f64,
    /// Probability of [`BandwidthClass::Cable`].
    pub cable: f64,
    /// Probability of [`BandwidthClass::Lan`].
    pub lan: f64,
}

impl ClassMix {
    /// The paper's uniform split.
    pub fn uniform() -> Self {
        ClassMix {
            modem: 1.0 / 3.0,
            cable: 1.0 / 3.0,
            lan: 1.0 / 3.0,
        }
    }

    /// A dial-up-dominated population (early-network era).
    pub fn dialup_era() -> Self {
        ClassMix {
            modem: 0.70,
            cable: 0.25,
            lan: 0.05,
        }
    }

    /// A fibre/LAN-dominated population (modern era).
    pub fn fiber_era() -> Self {
        ClassMix {
            modem: 0.05,
            cable: 0.25,
            lan: 0.70,
        }
    }

    /// Check the weights form a probability distribution.
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("modem", self.modem),
            ("cable", self.cable),
            ("lan", self.lan),
        ] {
            if !w.is_finite() || !(0.0..=1.0).contains(&w) {
                return Err(format!("class mix {name} weight {w} out of [0,1]"));
            }
        }
        let sum = self.modem + self.cable + self.lan;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("class mix weights sum to {sum}, expected 1"));
        }
        Ok(())
    }

    /// Sample one class by inverse CDF (modem, then cable, then LAN).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BandwidthClass {
        let u: f64 = rng.gen();
        if u < self.modem {
            BandwidthClass::Modem56K
        } else if u < self.modem + self.cable {
            BandwidthClass::Cable
        } else {
            BandwidthClass::Lan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ordering_is_slow_to_fast() {
        assert!(BandwidthClass::Modem56K < BandwidthClass::Cable);
        assert!(BandwidthClass::Cable < BandwidthClass::Lan);
    }

    #[test]
    fn slower_picks_minimum() {
        assert_eq!(
            BandwidthClass::Lan.slower(BandwidthClass::Modem56K),
            BandwidthClass::Modem56K
        );
        assert_eq!(
            BandwidthClass::Cable.slower(BandwidthClass::Lan),
            BandwidthClass::Cable
        );
        assert_eq!(
            BandwidthClass::Lan.slower(BandwidthClass::Lan),
            BandwidthClass::Lan
        );
    }

    #[test]
    fn benefit_weights_increase_with_speed() {
        assert_eq!(BandwidthClass::Modem56K.benefit_weight(), 1.0);
        assert!(BandwidthClass::Cable.benefit_weight() > 1.0);
        assert!(BandwidthClass::Lan.benefit_weight() > BandwidthClass::Cable.benefit_weight());
        // ... and stay mild enough not to swamp content similarity.
        assert!(BandwidthClass::Lan.benefit_weight() < 10.0);
    }

    #[test]
    fn raw_rate_weights_match_line_rates() {
        assert_eq!(BandwidthClass::Modem56K.raw_rate_weight(), 1.0);
        assert!((BandwidthClass::Cable.raw_rate_weight() - 1_500.0 / 56.0).abs() < 1e-9);
        assert!((BandwidthClass::Lan.raw_rate_weight() - 10_000.0 / 56.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            match BandwidthClass::sample_uniform(&mut rng) {
                BandwidthClass::Modem56K => counts[0] += 1,
                BandwidthClass::Cable => counts[1] += 1,
                BandwidthClass::Lan => counts[2] += 1,
            }
        }
        for &c in &counts {
            // each should be near 10_000 (±5 %)
            assert!((9_500..=10_500).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn class_mix_eras_sample_to_their_weights() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        for (mix, expect_modem) in [
            (ClassMix::dialup_era(), 0.70),
            (ClassMix::fiber_era(), 0.05),
            (ClassMix::uniform(), 1.0 / 3.0),
        ] {
            assert!(mix.validate().is_ok());
            let n = 30_000;
            let modems = (0..n)
                .filter(|_| mix.sample(&mut rng) == BandwidthClass::Modem56K)
                .count();
            let frac = modems as f64 / n as f64;
            assert!(
                (frac - expect_modem).abs() < 0.02,
                "modem share {frac} vs {expect_modem} for {mix:?}"
            );
        }
    }

    #[test]
    fn class_mix_validate_rejects_bad_weights() {
        let bad = ClassMix {
            modem: 0.5,
            cable: 0.5,
            lan: 0.5,
        };
        assert!(bad.validate().is_err());
        let negative = ClassMix {
            modem: -0.1,
            cable: 0.6,
            lan: 0.5,
        };
        assert!(negative.validate().is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BandwidthClass::Modem56K.label(), "56K");
        assert_eq!(BandwidthClass::Cable.label(), "cable");
        assert_eq!(BandwidthClass::Lan.label(), "LAN");
    }
}
