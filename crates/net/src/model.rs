//! The assembled per-run network model: one bandwidth class per node plus
//! the pairwise delay sampler.

use crate::bandwidth::{BandwidthClass, ClassMix};
use crate::latency::DelayModel;
use ddr_sim::{NodeId, RngFactory, SimDuration};
use rand::rngs::SmallRng;
use rand::Rng;

/// A per-node deterministic delay-sampling stream.
///
/// Derived from the run's [`RngFactory`] under the `"net.delay"` label
/// keyed by node index, so the delay sequence a node draws depends only on
/// `(root seed, node)` — never on how many delays *other* nodes sampled.
/// This is what lets sharded worlds sample network delays with no shared
/// RNG: each node (and therefore each shard, which owns a contiguous node
/// range) carries its own stream.
#[derive(Debug, Clone)]
pub struct NodeDelayStream {
    rng: SmallRng,
}

impl NodeDelayStream {
    /// The stream for `node` under `rngs`.
    pub fn new(rngs: &RngFactory, node: NodeId) -> Self {
        NodeDelayStream {
            rng: rngs.stream("net.delay", node.index() as u64),
        }
    }

    /// A multiplicative jitter factor drawn uniformly from `[lo, hi)` —
    /// for worlds that scale a base delay instead of sampling the
    /// class-pair model (webcache, peerolap).
    pub fn jitter(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }
}

/// Immutable network description for a simulation run.
///
/// Construction draws every node's bandwidth class from the run's seeded
/// RNG; afterwards the model is read-only and can be shared by reference
/// across worker threads in parameter sweeps.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    classes: Vec<BandwidthClass>,
    delays: DelayModel,
}

impl NetworkModel {
    /// Build a model for `n` nodes with uniformly-sampled classes (the
    /// paper's setting) and paper-default delays.
    pub fn paper(n: usize, rngs: &RngFactory) -> Self {
        let mut rng = rngs.stream("net.classes", 0);
        let classes = (0..n)
            .map(|_| BandwidthClass::sample_uniform(&mut rng))
            .collect();
        NetworkModel {
            classes,
            delays: DelayModel::paper(),
        }
    }

    /// Build a model for `n` nodes with classes drawn from `mix` instead
    /// of the paper's uniform split — the "bandwidth era" scenarios.
    /// Draws from the same `"net.classes"` stream as [`Self::paper`] (and
    /// `ClassMix::uniform()` consumes the RNG differently than
    /// `sample_uniform`, so a uniform mix is statistically but not
    /// bit-identical to `paper`; era scenarios always pass an explicit
    /// mix, never `None`-as-uniform through this path).
    pub fn paper_with_mix(n: usize, rngs: &RngFactory, mix: ClassMix) -> Self {
        let mut rng = rngs.stream("net.classes", 0);
        let classes = (0..n).map(|_| mix.sample(&mut rng)).collect();
        NetworkModel {
            classes,
            delays: DelayModel::paper(),
        }
    }

    /// Build with explicit classes (tests, scripted scenarios).
    pub fn with_classes(classes: Vec<BandwidthClass>, delays: DelayModel) -> Self {
        NetworkModel { classes, delays }
    }

    /// Build a model where every node has the same class — used by
    /// ablations to isolate bandwidth heterogeneity.
    pub fn homogeneous(n: usize, class: BandwidthClass) -> Self {
        NetworkModel {
            classes: vec![class; n],
            delays: DelayModel::paper(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the network is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Bandwidth class of `node`.
    #[inline]
    pub fn class(&self, node: NodeId) -> BandwidthClass {
        self.classes[node.index()]
    }

    /// The delay model in force.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delays
    }

    /// Sample the one-way delay for a message `from → to`.
    #[inline]
    pub fn one_way_delay<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        from: NodeId,
        to: NodeId,
    ) -> SimDuration {
        self.delays.sample(rng, self.class(from), self.class(to))
    }

    /// Sample the one-way delay for a message `from → to` from the
    /// sender's own per-node stream. Preferred over [`Self::one_way_delay`]
    /// inside worlds: no shared RNG, so handlers stay shard-local.
    #[inline]
    pub fn one_way_delay_for(
        &self,
        stream: &mut NodeDelayStream,
        from: NodeId,
        to: NodeId,
    ) -> SimDuration {
        self.delays
            .sample(&mut stream.rng, self.class(from), self.class(to))
    }

    /// Expected (mean) one-way delay for a pair, for analytic baselines.
    pub fn mean_delay(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.delays.mean(self.class(from), self.class(to))
    }

    /// The smallest delay the sampler can return for any pair — the
    /// natural conservative-kernel lookahead for worlds driven by this
    /// model (see [`DelayModel::min_delay`]).
    pub fn min_delay(&self) -> SimDuration {
        self.delays.min_delay()
    }

    /// Class census `(modem, cable, lan)` — used by tests and run banners.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for &cls in &self.classes {
            match cls {
                BandwidthClass::Modem56K => c.0 += 1,
                BandwidthClass::Cable => c.1 += 1,
                BandwidthClass::Lan => c.2 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_model_census_roughly_even() {
        let rngs = RngFactory::new(11);
        let net = NetworkModel::paper(3_000, &rngs);
        let (m, c, l) = net.census();
        assert_eq!(m + c + l, 3_000);
        for share in [m, c, l] {
            assert!((850..=1_150).contains(&share), "skewed census: {m}/{c}/{l}");
        }
    }

    #[test]
    fn era_mix_skews_census() {
        let rngs = RngFactory::new(11);
        let dialup = NetworkModel::paper_with_mix(3_000, &rngs, ClassMix::dialup_era());
        let (m, _, l) = dialup.census();
        assert!(m > 1_900 && l < 300, "dialup census {:?}", dialup.census());
        let fiber = NetworkModel::paper_with_mix(3_000, &rngs, ClassMix::fiber_era());
        let (m, _, l) = fiber.census();
        assert!(l > 1_900 && m < 300, "fiber census {:?}", fiber.census());
        // Same seed + same mix → same classes.
        let again = NetworkModel::paper_with_mix(3_000, &rngs, ClassMix::fiber_era());
        for i in 0..3_000 {
            assert_eq!(fiber.class(NodeId(i as u32)), again.class(NodeId(i as u32)));
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let rngs = RngFactory::new(5);
        let a = NetworkModel::paper(100, &rngs);
        let b = NetworkModel::paper(100, &rngs);
        for i in 0..100 {
            assert_eq!(a.class(NodeId(i)), b.class(NodeId(i)));
        }
    }

    #[test]
    fn homogeneous_model() {
        let net = NetworkModel::homogeneous(10, BandwidthClass::Lan);
        assert_eq!(net.census(), (0, 0, 10));
        assert_eq!(net.mean_delay(NodeId(0), NodeId(1)).as_millis(), 70);
    }

    #[test]
    fn delay_is_symmetric_in_expectation() {
        let net = NetworkModel::with_classes(
            vec![BandwidthClass::Modem56K, BandwidthClass::Lan],
            DelayModel::paper(),
        );
        assert_eq!(
            net.mean_delay(NodeId(0), NodeId(1)),
            net.mean_delay(NodeId(1), NodeId(0))
        );
        assert_eq!(net.mean_delay(NodeId(0), NodeId(1)).as_millis(), 300);
    }

    #[test]
    fn sampled_delay_within_bounds() {
        let net = NetworkModel::homogeneous(4, BandwidthClass::Cable);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let d = net
                .one_way_delay(&mut rng, NodeId(0), NodeId(3))
                .as_millis();
            assert!((90..=210).contains(&d));
        }
    }

    #[test]
    fn node_streams_are_deterministic_and_independent() {
        let rngs = RngFactory::new(17);
        let net = NetworkModel::paper(8, &rngs);
        let draw = |s: &mut NodeDelayStream| {
            (0..16)
                .map(|_| net.one_way_delay_for(s, NodeId(2), NodeId(5)).as_millis())
                .collect::<Vec<_>>()
        };
        let mut a = NodeDelayStream::new(&rngs, NodeId(2));
        let mut b = NodeDelayStream::new(&rngs, NodeId(2));
        let first = draw(&mut a);
        assert_eq!(first, draw(&mut b), "same (seed, node) → same stream");
        // Burning another node's stream must not perturb node 2's stream.
        let mut c = NodeDelayStream::new(&rngs, NodeId(2));
        let mut other = NodeDelayStream::new(&rngs, NodeId(3));
        draw(&mut other);
        assert_eq!(first, draw(&mut c));
        for _ in 0..5_000 {
            let d = net.one_way_delay_for(&mut a, NodeId(0), NodeId(1));
            assert!(d >= net.min_delay());
        }
    }

    #[test]
    fn jitter_in_range() {
        let rngs = RngFactory::new(3);
        let mut s = NodeDelayStream::new(&rngs, NodeId(0));
        for _ in 0..1_000 {
            let j = s.jitter(0.8, 1.2);
            assert!((0.8..1.2).contains(&j));
        }
    }
}
