//! Content-transfer (download) time model.
//!
//! The paper's search experiments only involve query/reply messages (delay
//! oracle in [`crate::latency`]); actual file downloads matter for the
//! benefit function's motivation ("a user will prefer to download a song
//! from a node with high bandwidth"). This model quantifies that: the
//! transfer time of a file is its size divided by the bottleneck link rate,
//! plus one one-way delay for the request. It backs the delay-aware
//! ablations in `ddr-bench`.

use crate::bandwidth::BandwidthClass;
use ddr_sim::SimDuration;

/// Deterministic transfer-time model (no jitter; jitter belongs to the
/// delay oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferModel {
    /// Protocol overhead factor in percent (TCP/HTTP framing); 0 = ideal.
    pub overhead_pct: u8,
}

impl Default for TransferModel {
    fn default() -> Self {
        // ~12 % overhead is a common rule of thumb for TCP over lossy links.
        TransferModel { overhead_pct: 12 }
    }
}

impl TransferModel {
    /// An ideal model with no protocol overhead.
    pub const fn ideal() -> Self {
        TransferModel { overhead_pct: 0 }
    }

    /// Effective bottleneck rate for a pair, in bytes per second.
    pub fn bottleneck_bytes_per_sec(&self, a: BandwidthClass, b: BandwidthClass) -> f64 {
        let kbps = a.slower(b).kbps() as f64;
        let raw = kbps * 1_000.0 / 8.0;
        raw * (1.0 - self.overhead_pct as f64 / 100.0)
    }

    /// Time to move `bytes` from `from` to `to`.
    pub fn transfer_time(
        &self,
        bytes: u64,
        from: BandwidthClass,
        to: BandwidthClass,
    ) -> SimDuration {
        let rate = self.bottleneck_bytes_per_sec(from, to);
        SimDuration::from_secs_f64(bytes as f64 / rate)
    }
}

/// Typical MP3 size used by examples/ablations: ~4 MiB.
pub const TYPICAL_SONG_BYTES: u64 = 4 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_pair_transfers_faster() {
        let m = TransferModel::ideal();
        let slow = m.transfer_time(1_000_000, BandwidthClass::Modem56K, BandwidthClass::Lan);
        let fast = m.transfer_time(1_000_000, BandwidthClass::Lan, BandwidthClass::Lan);
        assert!(fast < slow);
    }

    #[test]
    fn ideal_modem_rate_is_7k_bytes_per_sec() {
        let m = TransferModel::ideal();
        let rate = m.bottleneck_bytes_per_sec(BandwidthClass::Modem56K, BandwidthClass::Modem56K);
        assert!((rate - 7_000.0).abs() < 1e-9);
        // 7 kB over a 56K link ideal = 1 s
        assert_eq!(
            m.transfer_time(7_000, BandwidthClass::Modem56K, BandwidthClass::Cable)
                .as_millis(),
            1_000
        );
    }

    #[test]
    fn overhead_slows_transfers() {
        let ideal = TransferModel::ideal();
        let real = TransferModel::default();
        let b = TYPICAL_SONG_BYTES;
        assert!(
            real.transfer_time(b, BandwidthClass::Cable, BandwidthClass::Cable)
                > ideal.transfer_time(b, BandwidthClass::Cable, BandwidthClass::Cable)
        );
    }

    #[test]
    fn zero_bytes_is_instant() {
        let m = TransferModel::default();
        assert_eq!(
            m.transfer_time(0, BandwidthClass::Lan, BandwidthClass::Lan),
            SimDuration::ZERO
        );
    }

    #[test]
    fn song_download_times_are_plausible() {
        // 4 MiB over ideal 56K ≈ 600 s; over LAN ≈ 3.4 s.
        let m = TransferModel::ideal();
        let modem = m
            .transfer_time(
                TYPICAL_SONG_BYTES,
                BandwidthClass::Modem56K,
                BandwidthClass::Lan,
            )
            .as_secs_f64();
        let lan = m
            .transfer_time(TYPICAL_SONG_BYTES, BandwidthClass::Lan, BandwidthClass::Lan)
            .as_secs_f64();
        assert!((550.0..650.0).contains(&modem), "modem: {modem}");
        assert!((3.0..4.0).contains(&lan), "lan: {lan}");
    }
}
