//! Property-based tests for the network model.

use ddr_net::{BandwidthClass, DelayModel, NetworkModel, TransferModel};
use ddr_sim::{NodeId, RngFactory};
use proptest::prelude::*;

fn class_strategy() -> impl Strategy<Value = BandwidthClass> {
    prop_oneof![
        Just(BandwidthClass::Modem56K),
        Just(BandwidthClass::Cable),
        Just(BandwidthClass::Lan),
    ]
}

proptest! {
    /// Every sampled delay lies within the truncation interval of the
    /// pair's governing (slower) class.
    #[test]
    fn delays_respect_truncation(
        a in class_strategy(),
        b in class_strategy(),
        seed in any::<u64>(),
    ) {
        let model = DelayModel::paper();
        let p = model.pair_params(a, b);
        let mut rng = RngFactory::new(seed).stream("prop", 0);
        for _ in 0..200 {
            let d = model.sample(&mut rng, a, b).as_millis() as f64;
            prop_assert!(d >= p.lo() - 0.5 && d <= p.hi() + 0.5, "delay {d} outside [{}, {}]", p.lo(), p.hi());
        }
    }

    /// The governing class is commutative: delay(a,b) and delay(b,a) have
    /// identical parameters.
    #[test]
    fn pair_params_commute(a in class_strategy(), b in class_strategy()) {
        let model = DelayModel::paper();
        prop_assert_eq!(model.pair_params(a, b), model.pair_params(b, a));
        prop_assert_eq!(model.mean(a, b), model.mean(b, a));
    }

    /// Transfer time is monotone in size and anti-monotone in bottleneck
    /// rate.
    #[test]
    fn transfer_time_monotone(
        bytes in 1u64..100_000_000,
        extra in 1u64..1_000_000,
        a in class_strategy(),
        b in class_strategy(),
    ) {
        let m = TransferModel::default();
        let t1 = m.transfer_time(bytes, a, b);
        let t2 = m.transfer_time(bytes + extra, a, b);
        prop_assert!(t2 >= t1, "more bytes took less time");
        // the LAN-LAN pair is never slower than the same transfer on any pair
        let fast = m.transfer_time(bytes, BandwidthClass::Lan, BandwidthClass::Lan);
        prop_assert!(fast <= t1);
    }

    /// Network construction is a pure function of the seed.
    #[test]
    fn network_model_deterministic(seed in any::<u64>(), n in 1usize..200) {
        let f = RngFactory::new(seed);
        let x = NetworkModel::paper(n, &f);
        let y = NetworkModel::paper(n, &f);
        for i in 0..n {
            prop_assert_eq!(x.class(NodeId::from_index(i)), y.class(NodeId::from_index(i)));
        }
        let (m, c, l) = x.census();
        prop_assert_eq!(m + c + l, n);
    }
}
