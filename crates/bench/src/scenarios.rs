//! Scaled scenario builders used by all benches.

use ddr_gnutella::{Mode, ScenarioConfig};
use ddr_peerolap::{OlapMode, PeerOlapConfig};
use ddr_webcache::{CacheMode, WebCacheConfig};

/// The fixed seed all benches share: Criterion measures runtime, and the
/// simulated work must be identical across iterations and code versions.
pub const BENCH_SEED: u64 = 0xBE_EC;

/// A Gnutella scenario at bench scale: 100 users (paper densities), 8
/// simulated hours, 1 warm-up hour.
pub fn bench_gnutella(mode: Mode, hops: u8) -> ScenarioConfig {
    let mut c = ScenarioConfig::scaled(mode, hops, 20, 8);
    c.seed = BENCH_SEED;
    c
}

/// A PeerOlap scenario at bench scale: 24 peers, 4 groups, 3 hours.
pub fn bench_peerolap(mode: OlapMode) -> PeerOlapConfig {
    let mut c = PeerOlapConfig::default_scenario(mode);
    c.peers = 24;
    c.groups = 4;
    c.chunks_per_region = 2_048;
    c.cache_capacity = 512;
    c.sim_hours = 3;
    c.warmup_hours = 1;
    c.seed = BENCH_SEED;
    c
}

/// A web-cache scenario at bench scale: 32 proxies, 4 groups, 4 hours.
pub fn bench_webcache(mode: CacheMode) -> WebCacheConfig {
    let mut c = WebCacheConfig::default_scenario(mode);
    c.proxies = 32;
    c.groups = 4;
    c.pages_per_group = 4_000;
    c.global_pages = 4_000;
    c.cache_capacity = 500;
    c.sim_hours = 4;
    c.warmup_hours = 1;
    c.seed = BENCH_SEED;
    c
}
