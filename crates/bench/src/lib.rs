//! Shared scenario builders for the Criterion benchmark suite.
//!
//! Benches reproduce every paper figure at a reduced scale (protocol
//! densities preserved — see `WorkloadConfig::paper_scaled`) so the whole
//! suite runs in minutes on one core; the `ddr-experiments` binaries do
//! the full-scale runs.

pub mod scenarios;

pub use scenarios::{bench_gnutella, bench_peerolap, bench_webcache, BENCH_SEED};
