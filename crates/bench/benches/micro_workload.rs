//! Microbenchmarks of workload generation: Zipf sampling (every query
//! draws two), distinct-sampling (library construction), profile
//! generation, and delay sampling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ddr_net::{BandwidthClass, DelayModel};
use ddr_sim::RngFactory;
use ddr_workload::{generate_profiles, Catalog, WorkloadConfig, Zipf};
use std::hint::black_box;

fn zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload/zipf");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    let z = Zipf::new(4_000, 0.9);
    g.bench_function("sample_100k_n4000", |b| {
        let rngs = RngFactory::new(1);
        b.iter(|| {
            let mut rng = rngs.stream("zipf", 0);
            let mut acc = 0usize;
            for _ in 0..N {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    g.bench_function("sample_distinct_100_of_4000", |b| {
        let rngs = RngFactory::new(2);
        b.iter(|| {
            let mut rng = rngs.stream("zipfd", 0);
            black_box(z.sample_distinct(&mut rng, 100))
        })
    });
    g.finish();
}

fn profiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload/profiles");
    g.sample_size(10);
    let cfg = WorkloadConfig::paper_scaled(10); // 200 users
    let catalog = Catalog::new(cfg.songs, cfg.categories, cfg.theta);
    g.bench_function("generate_200_users", |b| {
        let rngs = RngFactory::new(3);
        b.iter(|| black_box(generate_profiles(&cfg, &catalog, &rngs)))
    });
    g.finish();
}

fn delays(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/delay");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    let model = DelayModel::paper();
    g.bench_function("sample_100k", |b| {
        let rngs = RngFactory::new(4);
        b.iter(|| {
            let mut rng = rngs.stream("delay", 0);
            let mut acc = 0u64;
            for i in 0..N {
                let a = if i % 3 == 0 {
                    BandwidthClass::Modem56K
                } else {
                    BandwidthClass::Lan
                };
                acc =
                    acc.wrapping_add(model.sample(&mut rng, a, BandwidthClass::Cable).as_millis());
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, zipf, profiles, delays);
criterion_main!(benches);
