//! Bench for Figure 2 (hops = 4): the heavy-flooding regime. Message
//! volume grows ~10× over hops = 2, which is exactly what this bench
//! quantifies (cost per simulated hour of 4-hop flooding).

use criterion::{criterion_group, criterion_main, Criterion};
use ddr_bench::bench_gnutella;
use ddr_gnutella::{run_scenario, Mode};
use std::hint::black_box;

fn fig2(c: &mut Criterion) {
    let s = run_scenario(bench_gnutella(Mode::Static, 4));
    let d = run_scenario(bench_gnutella(Mode::Dynamic, 4));
    assert!(
        d.total_messages() <= s.total_messages() * 1.05,
        "Fig2(b) shape: dynamic messages {} outgrew static {}",
        d.total_messages(),
        s.total_messages()
    );

    let mut g = c.benchmark_group("fig2_hops4");
    g.sample_size(10);
    g.bench_function("static", |b| {
        b.iter(|| run_scenario(black_box(bench_gnutella(Mode::Static, 4))))
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| run_scenario(black_box(bench_gnutella(Mode::Dynamic, 4))))
    });
    g.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
