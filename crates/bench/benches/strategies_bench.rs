//! Bench for the search-cost techniques (paper §2): plain BFS vs
//! iterative deepening vs local indices, on the same bench-scale
//! scenario. Runtime here tracks simulated message volume, so the bench
//! doubles as a cost comparison of the strategies themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use ddr_bench::bench_gnutella;
use ddr_gnutella::config::SearchStrategy;
use ddr_gnutella::{run_scenario, Mode};
use std::hint::black_box;

fn strategies(c: &mut Criterion) {
    // Shape check once: local indices must cut messages vs plain BFS.
    let bfs = run_scenario(bench_gnutella(Mode::Static, 4));
    let mut li_cfg = bench_gnutella(Mode::Static, 4);
    li_cfg.strategy = SearchStrategy::LocalIndices { radius: 1 };
    let li = run_scenario(li_cfg);
    assert!(
        li.total_messages() < bfs.total_messages(),
        "local indices did not reduce messages: {} vs {}",
        li.total_messages(),
        bfs.total_messages()
    );

    let mut g = c.benchmark_group("strategies_hops4");
    g.sample_size(10);
    g.bench_function("bfs", |b| {
        b.iter(|| run_scenario(black_box(bench_gnutella(Mode::Dynamic, 4))))
    });
    g.bench_function("iterative_deepening", |b| {
        b.iter(|| {
            let mut cfg = bench_gnutella(Mode::Dynamic, 4);
            cfg.strategy = SearchStrategy::IterativeDeepening {
                depths: vec![1, 2, 4],
            };
            run_scenario(black_box(cfg))
        })
    });
    g.bench_function("local_indices_r1", |b| {
        b.iter(|| {
            let mut cfg = bench_gnutella(Mode::Dynamic, 4);
            cfg.strategy = SearchStrategy::LocalIndices { radius: 1 };
            run_scenario(black_box(cfg))
        })
    });
    g.finish();
}

criterion_group!(benches, strategies);
criterion_main!(benches);
