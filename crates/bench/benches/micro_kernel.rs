//! Microbenchmarks of the simulation kernel's hot paths: event-heap
//! throughput, RNG stream derivation, fast-hash map operations, and the
//! duplicate-suppression cache. These dominate the inner loop of every
//! scenario run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ddr_core::DupCache;
use ddr_sim::{EventQueue, FastHashMap, QueryId, ReferenceEventQueue, RngFactory, SimTime};
use std::hint::black_box;

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/event_queue");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("push_pop_10k_fifo", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(N as usize);
            for i in 0..N {
                q.schedule_at(SimTime::from_millis(i), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.bench_function("push_pop_10k_interleaved", |b| {
        // The realistic pattern: pops interleaved with future pushes.
        b.iter(|| {
            let mut q = EventQueue::with_capacity(64);
            q.schedule_at(SimTime::ZERO, 0u64);
            let mut acc = 0u64;
            for i in 0..N {
                if let Some((t, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                    q.schedule_at(t + ddr_sim::SimDuration::from_millis(1 + (i % 7)), i);
                    if i % 3 == 0 {
                        q.schedule_at(t + ddr_sim::SimDuration::from_millis(2), i);
                    }
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Hold-model comparison of the calendar queue against the reference
/// binary heap at small pending counts. Each iteration keeps a steady
/// population of `pending` events and cycles `OPS` pop→push steps with a
/// mixed near/far delay profile — the regime where a naive calendar queue
/// would lose to a heap on cursor-scan overhead. The acceptance bar for
/// the kernel swap is "no regression below ~1k pending"; run with
/// `cargo bench --bench micro_kernel -- queue_cmp` to check.
fn queue_cmp(c: &mut Criterion) {
    const OPS: u64 = 10_000;

    // Identical drive loop for both kernels (same method surface), kept in
    // a macro so neither side gets a generic-dispatch penalty.
    macro_rules! hold_model {
        ($queue:expr, $pending:expr) => {{
            let mut q = $queue;
            for i in 0..$pending {
                q.schedule_at(SimTime::from_millis(i % 16), i);
            }
            let mut acc = 0u64;
            for i in 0..OPS {
                let (t, e) = q.pop().expect("hold model never drains");
                acc = acc.wrapping_add(e);
                // Mixed delay profile: mostly near-term, occasional
                // far-future outlier (overflow-heap path for the wheel).
                let delay = if i % 97 == 0 { 10_000 } else { 1 + (i % 13) };
                q.schedule_at(t + ddr_sim::SimDuration::from_millis(delay), i);
            }
            black_box(acc)
        }};
    }

    let mut g = c.benchmark_group("kernel/queue_cmp");
    g.throughput(Throughput::Elements(OPS));
    for pending in [16u64, 64, 256, 1_024] {
        g.bench_function(format!("calendar_hold_{pending}"), |b| {
            b.iter(|| hold_model!(EventQueue::with_capacity(pending as usize), pending))
        });
        g.bench_function(format!("reference_heap_hold_{pending}"), |b| {
            b.iter(|| {
                hold_model!(
                    ReferenceEventQueue::with_capacity(pending as usize),
                    pending
                )
            })
        });
    }
    g.finish();
}

fn rng_streams(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/rng");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("derive_1k_streams", |b| {
        let f = RngFactory::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000 {
                acc = acc.wrapping_add(f.sub_seed("bench", i));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn fast_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/fast_map");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("insert_lookup_10k_u64", |b| {
        b.iter(|| {
            let mut m: FastHashMap<u64, u64> = ddr_sim::hash::fast_map();
            for i in 0..N {
                m.insert(i.wrapping_mul(0x9E37_79B9), i);
            }
            let mut acc = 0u64;
            for i in 0..N {
                if let Some(&v) = m.get(&(i.wrapping_mul(0x9E37_79B9))) {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn dup_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/dup_cache");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("first_sighting_10k_with_eviction", |b| {
        b.iter(|| {
            let mut cache = DupCache::new(1_024);
            let mut fresh = 0u32;
            for i in 0..N {
                // ~25 % duplicates, like a 4-neighbor flood
                let id = QueryId(i / 4 * 3);
                if cache.first_sighting(id) {
                    fresh += 1;
                }
            }
            black_box(fresh)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    event_queue,
    queue_cmp,
    rng_streams,
    fast_map,
    dup_cache
);
criterion_main!(benches);
