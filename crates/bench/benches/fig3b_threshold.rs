//! Bench for Figure 3(b): the reconfiguration-threshold sweep
//! K ∈ {1, 2, 4, 8, 16} (dynamic, hops = 2). Reconfiguration frequency is
//! inversely proportional to K, so this doubles as a cost curve for the
//! update machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddr_bench::bench_gnutella;
use ddr_gnutella::{run_scenario, Mode};
use std::hint::black_box;

fn fig3b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b_threshold");
    g.sample_size(10);
    for k in [1u32, 2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut cfg = bench_gnutella(Mode::Dynamic, 2);
                cfg.reconfig_threshold = k;
                run_scenario(black_box(cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig3b);
criterion_main!(benches);
