//! Ablation benches over the framework's design choices (DESIGN.md §5):
//! benefit function, forward selection, invitation policy, swap cap, and
//! duplicate-cache capacity. Each variant runs the same bench-scale
//! dynamic scenario, so both runtime cost and (via stderr shape notes)
//! outcome quality are comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddr_bench::bench_gnutella;
use ddr_core::{ForwardSelection, InvitationPolicy};
use ddr_gnutella::{run_scenario, BenefitKind, Mode};
use std::hint::black_box;

fn benefit_functions(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/benefit");
    g.sample_size(10);
    for (name, kind) in [
        ("cumulative_BR", BenefitKind::Cumulative),
        ("count", BenefitKind::Count),
        ("latency_aware", BenefitKind::LatencyAware),
        ("advertised_bw", BenefitKind::AdvertisedBandwidth),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = bench_gnutella(Mode::Dynamic, 2);
                cfg.benefit = kind;
                run_scenario(black_box(cfg))
            })
        });
    }
    g.finish();
}

fn forward_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/forward");
    g.sample_size(10);
    for (name, sel) in [
        ("flood", ForwardSelection::All),
        ("random2", ForwardSelection::RandomK(2)),
        ("directed_bft2", ForwardSelection::TopKBenefit(2)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = bench_gnutella(Mode::Dynamic, 2);
                cfg.forward = sel;
                run_scenario(black_box(cfg))
            })
        });
    }
    g.finish();
}

fn invitation_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/invitation");
    g.sample_size(10);
    for (name, pol) in [
        ("always_accept", InvitationPolicy::AlwaysAccept),
        ("benefit_gated", InvitationPolicy::BenefitGated),
        (
            "summary_gated",
            InvitationPolicy::SummaryGated {
                min_similarity: 0.3,
            },
        ),
        (
            "trial_20min",
            InvitationPolicy::TrialPeriod {
                trial_millis: 20 * 60 * 1_000,
            },
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = bench_gnutella(Mode::Dynamic, 2);
                cfg.invitation = pol;
                run_scenario(black_box(cfg))
            })
        });
    }
    g.finish();
}

fn swap_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/swap_cap");
    g.sample_size(10);
    for (name, cap) in [("one_swap", 1usize), ("unbounded", usize::MAX)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = bench_gnutella(Mode::Dynamic, 2);
                cfg.max_swaps_per_reconfig = cap;
                run_scenario(black_box(cfg))
            })
        });
    }
    g.finish();
}

fn dup_cache_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/dup_cache");
    g.sample_size(10);
    for cap in [64usize, 512, 4_096] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut cfg = bench_gnutella(Mode::Dynamic, 2);
                cfg.dup_cache_capacity = cap;
                run_scenario(black_box(cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    benefit_functions,
    forward_selection,
    invitation_policy,
    swap_cap,
    dup_cache_capacity
);
criterion_main!(benches);
