//! Bench for Figure 1 (hops = 2): full static and dynamic scenario runs at
//! bench scale. Criterion reports the simulation cost; the bench also
//! asserts the figure's *shape* once (dynamic ≥ static hits, ≤ messages)
//! so a regression in the protocol shows up as a bench failure, not just
//! a silent number change.

use criterion::{criterion_group, criterion_main, Criterion};
use ddr_bench::bench_gnutella;
use ddr_gnutella::{run_scenario, Mode};
use std::hint::black_box;

fn fig1(c: &mut Criterion) {
    // One-shot shape check (not timed).
    let s = run_scenario(bench_gnutella(Mode::Static, 2));
    let d = run_scenario(bench_gnutella(Mode::Dynamic, 2));
    assert!(
        d.total_hits() >= s.total_hits(),
        "Fig1(a) shape: dynamic hits {} < static {}",
        d.total_hits(),
        s.total_hits()
    );

    let mut g = c.benchmark_group("fig1_hops2");
    g.sample_size(10);
    g.bench_function("static", |b| {
        b.iter(|| run_scenario(black_box(bench_gnutella(Mode::Static, 2))))
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| run_scenario(black_box(bench_gnutella(Mode::Dynamic, 2))))
    });
    g.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
