//! Bench for the PeerOlap case study: static vs dynamic scenario cost,
//! plus the chunk-cost function in isolation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ddr_bench::scenarios::bench_peerolap as bench_cfg;
use ddr_peerolap::{chunk_processing_ms, run_peerolap, OlapMode};
use ddr_sim::ItemId;
use std::hint::black_box;

fn scenario(c: &mut Criterion) {
    let s = run_peerolap(bench_cfg(OlapMode::Static));
    let d = run_peerolap(bench_cfg(OlapMode::Dynamic));
    assert!(
        d.peer_share() >= s.peer_share() * 0.95,
        "peerolap shape: dynamic peer share {} collapsed vs static {}",
        d.peer_share(),
        s.peer_share()
    );

    let mut g = c.benchmark_group("peerolap/scenario");
    g.sample_size(10);
    g.bench_function("static", |b| {
        b.iter(|| run_peerolap(black_box(bench_cfg(OlapMode::Static))))
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| run_peerolap(black_box(bench_cfg(OlapMode::Dynamic))))
    });
    g.finish();
}

fn chunk_costs(c: &mut Criterion) {
    let mut g = c.benchmark_group("peerolap/chunk_cost");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("cost_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc = acc.wrapping_add(chunk_processing_ms(ItemId(i as u32)));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, scenario, chunk_costs);
criterion_main!(benches);
