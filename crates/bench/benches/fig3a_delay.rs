//! Bench for Figure 3(a): one scenario run per hop limit 1–4 and mode —
//! the delay sweep. Criterion's parameterised groups give the cost curve
//! over the terminating condition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddr_bench::bench_gnutella;
use ddr_gnutella::{run_scenario, Mode};
use std::hint::black_box;

fn fig3a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3a_delay");
    g.sample_size(10);
    for hops in 1..=4u8 {
        g.bench_with_input(BenchmarkId::new("static", hops), &hops, |b, &h| {
            b.iter(|| run_scenario(black_box(bench_gnutella(Mode::Static, h))))
        });
        g.bench_with_input(BenchmarkId::new("dynamic", hops), &hops, |b, &h| {
            b.iter(|| run_scenario(black_box(bench_gnutella(Mode::Dynamic, h))))
        });
    }
    g.finish();
}

criterion_group!(benches, fig3a);
criterion_main!(benches);
