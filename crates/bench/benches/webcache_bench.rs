//! Bench for the web-cache case study: static vs dynamic neighborhoods,
//! plus the LRU hot path in isolation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ddr_bench::bench_webcache;
use ddr_sim::ItemId;
use ddr_webcache::{run_webcache, CacheMode, LruCache};
use std::hint::black_box;

fn scenario(c: &mut Criterion) {
    let s = run_webcache(bench_webcache(CacheMode::Static));
    let d = run_webcache(bench_webcache(CacheMode::Dynamic));
    assert!(
        d.neighbor_hit_ratio() >= s.neighbor_hit_ratio(),
        "webcache shape: dynamic sibling hits {} < static {}",
        d.neighbor_hit_ratio(),
        s.neighbor_hit_ratio()
    );

    let mut g = c.benchmark_group("webcache/scenario");
    g.sample_size(10);
    g.bench_function("static", |b| {
        b.iter(|| run_webcache(black_box(bench_webcache(CacheMode::Static))))
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| run_webcache(black_box(bench_webcache(CacheMode::Dynamic))))
    });
    g.finish();
}

fn lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("webcache/lru");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("insert_touch_100k_cap1k", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(1_000);
            let mut hits = 0u32;
            for i in 0..N {
                // Zipf-ish skew via modulus trick: low ids recur often.
                let id = ItemId((i % 17 * i % 2_048) as u32);
                if cache.touch(id) {
                    hits += 1;
                } else {
                    cache.insert(id);
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, scenario, lru);
criterion_main!(benches);
