//! A capacity-bounded, duplicate-free, insertion-ordered neighbor list.
//!
//! Degree bounds in the paper are tiny (Gnutella: 4 neighbors), so a flat
//! `Vec` with linear scans beats any hashed structure; insertion order is
//! preserved because eviction policies and tie-breaking want stable,
//! deterministic iteration.

use ddr_sim::NodeId;

/// Error returned by [`NeighborList::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddError {
    /// The node is already present.
    Duplicate,
    /// The list is at capacity.
    Full,
}

/// A bounded list of neighbor ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborList {
    nodes: Vec<NodeId>,
    capacity: usize,
}

impl NeighborList {
    /// An empty list with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        NeighborList {
            nodes: Vec::with_capacity(capacity.min(64)),
            capacity,
        }
    }

    /// An effectively unbounded list (pure-asymmetric incoming lists).
    pub fn unbounded() -> Self {
        NeighborList {
            nodes: Vec::new(),
            capacity: usize::MAX,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of neighbors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the list is at capacity.
    pub fn is_full(&self) -> bool {
        self.nodes.len() >= self.capacity
    }

    /// Whether `node` is present.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Add `node`; fails on duplicates and at capacity.
    pub fn add(&mut self, node: NodeId) -> Result<(), AddError> {
        if self.contains(node) {
            return Err(AddError::Duplicate);
        }
        if self.is_full() {
            return Err(AddError::Full);
        }
        self.nodes.push(node);
        Ok(())
    }

    /// Remove `node`; returns whether it was present. Order of the
    /// remaining entries is preserved (deterministic iteration matters for
    /// reproducibility).
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.nodes.iter().position(|&n| n == node) {
            Some(i) => {
                self.nodes.remove(i);
                true
            }
            None => false,
        }
    }

    /// Remove and return all entries (e.g. when a node logs off).
    pub fn drain(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.nodes)
    }

    /// Iterate over neighbors in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The neighbors as a slice (insertion order).
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }
}

impl<'a> IntoIterator for &'a NeighborList {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_contains() {
        let mut l = NeighborList::with_capacity(4);
        assert!(l.add(NodeId(1)).is_ok());
        assert!(l.contains(NodeId(1)));
        assert!(!l.contains(NodeId(2)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn rejects_duplicates() {
        let mut l = NeighborList::with_capacity(4);
        l.add(NodeId(1)).unwrap();
        assert_eq!(l.add(NodeId(1)), Err(AddError::Duplicate));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn rejects_beyond_capacity() {
        let mut l = NeighborList::with_capacity(2);
        l.add(NodeId(1)).unwrap();
        l.add(NodeId(2)).unwrap();
        assert!(l.is_full());
        assert_eq!(l.add(NodeId(3)), Err(AddError::Full));
    }

    #[test]
    fn duplicate_reported_even_when_full() {
        let mut l = NeighborList::with_capacity(1);
        l.add(NodeId(1)).unwrap();
        // duplicate takes precedence over full: the node IS a neighbor
        assert_eq!(l.add(NodeId(1)), Err(AddError::Duplicate));
    }

    #[test]
    fn remove_preserves_order() {
        let mut l = NeighborList::with_capacity(4);
        for i in 1..=4 {
            l.add(NodeId(i)).unwrap();
        }
        assert!(l.remove(NodeId(2)));
        assert!(!l.remove(NodeId(2)));
        let rest: Vec<_> = l.iter().collect();
        assert_eq!(rest, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn drain_empties() {
        let mut l = NeighborList::with_capacity(3);
        l.add(NodeId(5)).unwrap();
        l.add(NodeId(6)).unwrap();
        let out = l.drain();
        assert_eq!(out, vec![NodeId(5), NodeId(6)]);
        assert!(l.is_empty());
        assert!(!l.is_full());
    }

    #[test]
    fn unbounded_never_full() {
        let mut l = NeighborList::unbounded();
        for i in 0..10_000 {
            l.add(NodeId(i)).unwrap();
        }
        assert!(!l.is_full());
        assert_eq!(l.len(), 10_000);
    }
}
