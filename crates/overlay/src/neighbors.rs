//! A capacity-bounded, duplicate-free, insertion-ordered neighbor list.
//!
//! Degree bounds in the paper are tiny (Gnutella: 4 neighbors), so a flat
//! array with linear scans beats any hashed structure; insertion order is
//! preserved because eviction policies and tie-breaking want stable,
//! deterministic iteration.
//!
//! Storage is a small-buffer optimization: up to [`INLINE_NEIGHBORS`]
//! entries live inline in the struct (no heap allocation at all — at
//! million-node scale the two per-node lists used to cost two `Vec`
//! allocations each and a pointer chase per scan), spilling to a `Vec`
//! only for the rare wider lists (all-to-all test topologies, unbounded
//! pure-asymmetric incoming lists).

use ddr_sim::NodeId;

/// Entries stored inline before spilling to the heap. Covers the paper's
/// degree bounds (4–5) with headroom; 8 ids is 32 bytes, the sweet spot
/// before the inline copy on `remove` starts to cost.
pub const INLINE_NEIGHBORS: usize = 8;

/// Error returned by [`NeighborList::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddError {
    /// The node is already present.
    Duplicate,
    /// The list is at capacity.
    Full,
}

#[derive(Clone)]
enum Store {
    /// `len` live entries at the front of `buf`; the tail is garbage.
    Inline {
        buf: [NodeId; INLINE_NEIGHBORS],
        len: u8,
    },
    /// Lists that outgrew the inline buffer (they never shrink back:
    /// representation flapping would churn allocations for nothing).
    Spilled(Vec<NodeId>),
}

/// A bounded list of neighbor ids.
#[derive(Clone)]
pub struct NeighborList {
    store: Store,
    capacity: usize,
}

impl NeighborList {
    /// An empty list with the given capacity. Lists no wider than
    /// [`INLINE_NEIGHBORS`] never allocate.
    pub fn with_capacity(capacity: usize) -> Self {
        NeighborList {
            store: Store::Inline {
                buf: [NodeId(0); INLINE_NEIGHBORS],
                len: 0,
            },
            capacity,
        }
    }

    /// An effectively unbounded list (pure-asymmetric incoming lists).
    /// Starts inline like every other list; spills on demand.
    pub fn unbounded() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of neighbors.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Inline { len, .. } => *len as usize,
            Store::Spilled(v) => v.len(),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the list is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Whether `node` is present.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.as_slice().contains(&node)
    }

    /// Add `node`; fails on duplicates and at capacity.
    pub fn add(&mut self, node: NodeId) -> Result<(), AddError> {
        if self.contains(node) {
            return Err(AddError::Duplicate);
        }
        if self.is_full() {
            return Err(AddError::Full);
        }
        match &mut self.store {
            Store::Inline { buf, len } => {
                if (*len as usize) < INLINE_NEIGHBORS {
                    buf[*len as usize] = node;
                    *len += 1;
                } else {
                    // Outgrew the inline buffer: spill, preserving order.
                    let mut v = Vec::with_capacity(INLINE_NEIGHBORS * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(node);
                    self.store = Store::Spilled(v);
                }
            }
            Store::Spilled(v) => v.push(node),
        }
        Ok(())
    }

    /// Remove `node`; returns whether it was present. Order of the
    /// remaining entries is preserved (deterministic iteration matters for
    /// reproducibility).
    pub fn remove(&mut self, node: NodeId) -> bool {
        match &mut self.store {
            Store::Inline { buf, len } => {
                let n = *len as usize;
                match buf[..n].iter().position(|&x| x == node) {
                    Some(i) => {
                        buf.copy_within(i + 1..n, i);
                        *len -= 1;
                        true
                    }
                    None => false,
                }
            }
            Store::Spilled(v) => match v.iter().position(|&x| x == node) {
                Some(i) => {
                    v.remove(i);
                    true
                }
                None => false,
            },
        }
    }

    /// Remove and return all entries (e.g. when a node logs off).
    pub fn drain(&mut self) -> Vec<NodeId> {
        match &mut self.store {
            Store::Inline { buf, len } => {
                let out = buf[..*len as usize].to_vec();
                *len = 0;
                out
            }
            Store::Spilled(v) => std::mem::take(v),
        }
    }

    /// Iterate over neighbors in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.as_slice().iter().copied()
    }

    /// The neighbors as a slice (insertion order).
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        match &self.store {
            Store::Inline { buf, len } => &buf[..*len as usize],
            Store::Spilled(v) => v,
        }
    }
}

// Equality and Debug go through the logical contents: whether a list has
// spilled is a storage detail (two same-capacity lists can differ in
// representation after enough adds and removes).
impl PartialEq for NeighborList {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.as_slice() == other.as_slice()
    }
}
impl Eq for NeighborList {}

impl std::fmt::Debug for NeighborList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborList")
            .field("nodes", &self.as_slice())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<'a> IntoIterator for &'a NeighborList {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_contains() {
        let mut l = NeighborList::with_capacity(4);
        assert!(l.add(NodeId(1)).is_ok());
        assert!(l.contains(NodeId(1)));
        assert!(!l.contains(NodeId(2)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn rejects_duplicates() {
        let mut l = NeighborList::with_capacity(4);
        l.add(NodeId(1)).unwrap();
        assert_eq!(l.add(NodeId(1)), Err(AddError::Duplicate));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn rejects_beyond_capacity() {
        let mut l = NeighborList::with_capacity(2);
        l.add(NodeId(1)).unwrap();
        l.add(NodeId(2)).unwrap();
        assert!(l.is_full());
        assert_eq!(l.add(NodeId(3)), Err(AddError::Full));
    }

    #[test]
    fn duplicate_reported_even_when_full() {
        let mut l = NeighborList::with_capacity(1);
        l.add(NodeId(1)).unwrap();
        // duplicate takes precedence over full: the node IS a neighbor
        assert_eq!(l.add(NodeId(1)), Err(AddError::Duplicate));
    }

    #[test]
    fn remove_preserves_order() {
        let mut l = NeighborList::with_capacity(4);
        for i in 1..=4 {
            l.add(NodeId(i)).unwrap();
        }
        assert!(l.remove(NodeId(2)));
        assert!(!l.remove(NodeId(2)));
        let rest: Vec<_> = l.iter().collect();
        assert_eq!(rest, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn drain_empties() {
        let mut l = NeighborList::with_capacity(3);
        l.add(NodeId(5)).unwrap();
        l.add(NodeId(6)).unwrap();
        let out = l.drain();
        assert_eq!(out, vec![NodeId(5), NodeId(6)]);
        assert!(l.is_empty());
        assert!(!l.is_full());
    }

    #[test]
    fn unbounded_never_full() {
        let mut l = NeighborList::unbounded();
        for i in 0..10_000 {
            l.add(NodeId(i)).unwrap();
        }
        assert!(!l.is_full());
        assert_eq!(l.len(), 10_000);
    }

    /// The spill boundary: behaviour must be seamless crossing
    /// INLINE_NEIGHBORS in either direction.
    #[test]
    fn spill_preserves_order_and_semantics() {
        let cap = INLINE_NEIGHBORS * 3;
        let mut l = NeighborList::with_capacity(cap);
        for i in 0..cap as u32 {
            l.add(NodeId(i)).unwrap();
        }
        assert_eq!(
            l.iter().collect::<Vec<_>>(),
            (0..cap as u32).map(NodeId).collect::<Vec<_>>()
        );
        assert_eq!(l.add(NodeId(0)), Err(AddError::Duplicate));
        // Shrink below the inline threshold again; order still holds.
        for i in 0..(cap as u32 - 2) {
            assert!(l.remove(NodeId(i)));
        }
        assert_eq!(
            l.iter().collect::<Vec<_>>(),
            vec![NodeId(cap as u32 - 2), NodeId(cap as u32 - 1)]
        );
    }

    /// Equality is logical, not representational: a spilled-then-shrunk
    /// list equals a never-spilled one with the same contents.
    #[test]
    fn equality_ignores_spill_state() {
        let cap = INLINE_NEIGHBORS + 4;
        let mut spilled = NeighborList::with_capacity(cap);
        for i in 0..(INLINE_NEIGHBORS as u32 + 1) {
            spilled.add(NodeId(i)).unwrap();
        }
        for i in 2..(INLINE_NEIGHBORS as u32 + 1) {
            spilled.remove(NodeId(i));
        }
        let mut inline = NeighborList::with_capacity(cap);
        inline.add(NodeId(0)).unwrap();
        inline.add(NodeId(1)).unwrap();
        assert_eq!(spilled, inline);
        assert_eq!(format!("{spilled:?}"), format!("{inline:?}"));
    }
}
