//! # ddr-overlay — neighbor-list structures and overlay topology
//!
//! Implements the paper's §3.1 "Neighbor Relations" machinery:
//!
//! * every repository keeps an **outgoing** list `L_o` (where it forwards
//!   its own requests) and an **incoming** list `L_i` (whom it accepts
//!   requests from), both capacity-bounded;
//! * the network is **consistent** iff `u ∈ out(v) ⇒ v ∈ in(u)` — the
//!   invariant every mutation helper here preserves and
//!   [`Topology::check_consistency`] verifies;
//! * the three regimes of interest: **all-to-all** (both lists contain
//!   everyone — small n only), **pure asymmetric** (incoming capacity = n,
//!   so unilateral outgoing changes can never break consistency) and
//!   **symmetric** (`L_o = L_i`, changes need pairwise agreement — the
//!   Gnutella case).
//!
//! Graph utilities (bounded-hop BFS, reachable-set size, degree stats)
//! support the framework's local-indices policy and the evaluation's
//! "up to N nodes explored per query" analyses.

pub mod graph;
pub mod neighbors;
pub mod relation;
pub mod topology;

pub use graph::{bfs_within, reachable_within};
pub use neighbors::{NeighborList, INLINE_NEIGHBORS};
pub use relation::RelationKind;
pub use topology::{ConsistencyError, Topology};
