//! The neighbor-relation regimes of paper §3.1.

/// How outgoing and incoming neighbor lists relate across the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// Both lists of every node contain all repositories; applicable only
    /// for small n (e.g. a single multicast group).
    AllToAll,
    /// Incoming capacity is unbounded (= n), so every node may appear in
    /// anyone's outgoing list. Consistency can never be violated by
    /// unilateral outgoing-list changes — nodes "select neighbors based
    /// solely on their own criteria" (the Squid top-level-proxy case).
    PureAsymmetric,
    /// Both lists bounded but allowed to differ; consistency requires
    /// coordinated updates.
    Asymmetric,
    /// `L_o = L_i` at every node; reconfiguration needs an "agreement"
    /// between both endpoints — the Gnutella case, implemented by the
    /// invitation/eviction protocol of Algo 4.
    Symmetric,
}

impl RelationKind {
    /// Whether a node may change its outgoing list without contacting the
    /// target (true only for the pure-asymmetric regime, where incoming
    /// lists accept everyone).
    pub fn unilateral_updates_safe(self) -> bool {
        matches!(self, RelationKind::PureAsymmetric | RelationKind::AllToAll)
    }

    /// Whether the regime forces `out == in` at every node.
    pub fn is_symmetric(self) -> bool {
        matches!(self, RelationKind::Symmetric | RelationKind::AllToAll)
    }

    /// Human-readable label for run banners.
    pub fn label(self) -> &'static str {
        match self {
            RelationKind::AllToAll => "all-to-all",
            RelationKind::PureAsymmetric => "pure-asymmetric",
            RelationKind::Asymmetric => "asymmetric",
            RelationKind::Symmetric => "symmetric",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unilateral_safety() {
        assert!(RelationKind::PureAsymmetric.unilateral_updates_safe());
        assert!(RelationKind::AllToAll.unilateral_updates_safe());
        assert!(!RelationKind::Asymmetric.unilateral_updates_safe());
        assert!(!RelationKind::Symmetric.unilateral_updates_safe());
    }

    #[test]
    fn symmetry_classification() {
        assert!(RelationKind::Symmetric.is_symmetric());
        assert!(RelationKind::AllToAll.is_symmetric());
        assert!(!RelationKind::PureAsymmetric.is_symmetric());
        assert!(!RelationKind::Asymmetric.is_symmetric());
    }

    #[test]
    fn labels() {
        assert_eq!(RelationKind::Symmetric.label(), "symmetric");
        assert_eq!(RelationKind::PureAsymmetric.label(), "pure-asymmetric");
    }
}
