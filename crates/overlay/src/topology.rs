//! The overlay topology: per-node outgoing/incoming lists plus mutation
//! helpers that preserve the consistency invariant of paper §3.1.

use crate::neighbors::{AddError, NeighborList};
use crate::relation::RelationKind;
use ddr_sim::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A violation of `u ∈ out(v) ⇒ v ∈ in(u)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistencyError {
    /// The node whose outgoing list references `target`.
    pub source: NodeId,
    /// The node missing the reciprocal incoming entry.
    pub target: NodeId,
}

/// Per-node link state.
#[derive(Debug, Clone)]
struct Links {
    out: NeighborList,
    inc: NeighborList,
}

/// The whole overlay.
///
/// ```
/// use ddr_overlay::Topology;
/// use ddr_sim::NodeId;
///
/// let mut t = Topology::symmetric(4, 2);
/// t.link_symmetric(NodeId(0), NodeId(1)).unwrap();
/// assert!(t.out(NodeId(1)).contains(NodeId(0)), "symmetric links are mutual");
/// assert!(t.check_consistency().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Links>,
    relation: RelationKind,
}

impl Topology {
    /// An edgeless overlay of `n` nodes with the given per-list capacities.
    /// For [`RelationKind::PureAsymmetric`], `in_capacity` is ignored and
    /// incoming lists are unbounded.
    pub fn new(n: usize, relation: RelationKind, out_capacity: usize, in_capacity: usize) -> Self {
        let nodes = (0..n)
            .map(|_| Links {
                out: NeighborList::with_capacity(out_capacity),
                inc: if relation == RelationKind::PureAsymmetric {
                    NeighborList::unbounded()
                } else {
                    NeighborList::with_capacity(in_capacity)
                },
            })
            .collect();
        Topology { nodes, relation }
    }

    /// A symmetric overlay (Gnutella-style) with equal out/in capacity.
    pub fn symmetric(n: usize, degree: usize) -> Self {
        Topology::new(n, RelationKind::Symmetric, degree, degree)
    }

    /// The all-to-all regime (§3.1's first case): every node's outgoing
    /// and incoming lists contain all other repositories. "In order to
    /// avoid unnecessary resource consumption, this category is applicable
    /// only for small values of N" — the quadratic link count is the
    /// caller's responsibility.
    pub fn all_to_all(n: usize) -> Self {
        let mut t = Topology::new(
            n,
            RelationKind::AllToAll,
            n.saturating_sub(1),
            n.saturating_sub(1),
        );
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    let nb = NodeId::from_index(b);
                    t.nodes[a].out.add(nb).expect("capacity n-1");
                    t.nodes[a].inc.add(nb).expect("capacity n-1");
                }
            }
        }
        t
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The relation regime.
    pub fn relation(&self) -> RelationKind {
        self.relation
    }

    /// Outgoing neighbors of `node`.
    #[inline]
    pub fn out(&self, node: NodeId) -> &NeighborList {
        &self.nodes[node.index()].out
    }

    /// Incoming neighbors of `node`.
    #[inline]
    pub fn inc(&self, node: NodeId) -> &NeighborList {
        &self.nodes[node.index()].inc
    }

    /// Add a directed edge `from → to` (to joins from's outgoing list, from
    /// joins to's incoming list). Keeps the invariant by rolling back when
    /// the second half fails.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), AddError> {
        assert_ne!(from, to, "self-loops are not meaningful in the overlay");
        self.nodes[from.index()].out.add(to)?;
        if let Err(e) = self.nodes[to.index()].inc.add(from) {
            self.nodes[from.index()].out.remove(to);
            return Err(e);
        }
        Ok(())
    }

    /// Remove the directed edge `from → to`; returns whether it existed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        let had = self.nodes[from.index()].out.remove(to);
        if had {
            let reciprocal = self.nodes[to.index()].inc.remove(from);
            debug_assert!(reciprocal, "inconsistent edge {from}->{to}");
        }
        had
    }

    /// Create a symmetric link `a ↔ b` (both out lists and both in lists).
    /// All four insertions succeed or none do.
    pub fn link_symmetric(&mut self, a: NodeId, b: NodeId) -> Result<(), AddError> {
        assert_ne!(a, b);
        // Check all four capacities up front so rollback is never partial.
        if self.nodes[a.index()].out.contains(b) {
            return Err(AddError::Duplicate);
        }
        if self.nodes[a.index()].out.is_full()
            || self.nodes[a.index()].inc.is_full()
            || self.nodes[b.index()].out.is_full()
            || self.nodes[b.index()].inc.is_full()
        {
            return Err(AddError::Full);
        }
        self.nodes[a.index()]
            .out
            .add(b)
            .expect("precondition checked");
        self.nodes[a.index()]
            .inc
            .add(b)
            .expect("precondition checked");
        self.nodes[b.index()]
            .out
            .add(a)
            .expect("precondition checked");
        self.nodes[b.index()]
            .inc
            .add(a)
            .expect("precondition checked");
        Ok(())
    }

    /// Tear down a symmetric link `a ↔ b`; returns whether it existed.
    pub fn unlink_symmetric(&mut self, a: NodeId, b: NodeId) -> bool {
        let had = self.nodes[a.index()].out.remove(b);
        if had {
            self.nodes[a.index()].inc.remove(b);
            self.nodes[b.index()].out.remove(a);
            self.nodes[b.index()].inc.remove(a);
        }
        had
    }

    /// Symmetric neighbor degree of `node` (out-list length).
    pub fn degree(&self, node: NodeId) -> usize {
        self.nodes[node.index()].out.len()
    }

    /// Remove every link touching `node` (log-off). Returns the former
    /// symmetric neighbors (out-list) so callers can notify them.
    pub fn isolate(&mut self, node: NodeId) -> Vec<NodeId> {
        let out = self.nodes[node.index()].out.drain();
        for &n in &out {
            self.nodes[n.index()].inc.remove(node);
            if self.relation.is_symmetric() {
                self.nodes[n.index()].out.remove(node);
            }
        }
        let inc = self.nodes[node.index()].inc.drain();
        for &n in &inc {
            self.nodes[n.index()].out.remove(node);
            if self.relation.is_symmetric() {
                self.nodes[n.index()].inc.remove(node);
            }
        }
        out
    }

    /// Verify the consistency invariant across the whole overlay, plus the
    /// `out == in` condition for symmetric regimes. Returns every violation.
    pub fn check_consistency(&self) -> Vec<ConsistencyError> {
        let mut errors = Vec::new();
        for (i, links) in self.nodes.iter().enumerate() {
            let v = NodeId::from_index(i);
            for u in links.out.iter() {
                if !self.nodes[u.index()].inc.contains(v) {
                    errors.push(ConsistencyError {
                        source: v,
                        target: u,
                    });
                }
            }
            if self.relation.is_symmetric() {
                for u in links.out.iter() {
                    if !links.inc.contains(u) {
                        errors.push(ConsistencyError {
                            source: v,
                            target: u,
                        });
                    }
                }
                if links.out.len() != links.inc.len() {
                    errors.push(ConsistencyError {
                        source: v,
                        target: v,
                    });
                }
            }
        }
        errors
    }

    /// Bootstrap a random symmetric overlay among `members`, giving each up
    /// to `degree` links — the paper's initial Gnutella configuration
    /// ("both the initial configuration and the changes are purely
    /// random"). Nodes outside `members` stay isolated.
    pub fn populate_random_symmetric<R: Rng + ?Sized>(
        &mut self,
        members: &[NodeId],
        degree: usize,
        rng: &mut R,
    ) {
        // Repeated random-pairing passes: shuffle, then link consecutive
        // under-full pairs. A few passes fill almost everyone; stragglers
        // (odd counts, unlucky shuffles) stay under-full exactly like real
        // bootstrap nodes waiting for contacts.
        let mut candidates: Vec<NodeId> = members.to_vec();
        for _pass in 0..degree * 4 {
            candidates.retain(|&n| self.degree(n) < degree);
            if candidates.len() < 2 {
                break;
            }
            candidates.shuffle(rng);
            for pair in candidates.chunks(2) {
                if let [a, b] = *pair {
                    let _ = self.link_symmetric(a, b);
                }
            }
        }
    }

    /// Join `node` to a symmetric overlay by linking to random online
    /// members with free slots (Gnutella login: "retrieves a number of
    /// addresses of other nodes that are currently online" and picks
    /// neighbors among them).
    ///
    /// `node_target` caps how many links `node` ends up with (callers may
    /// reserve slots for in-flight invitations); `peer_degree` is the
    /// network-wide degree bound candidates must respect.
    pub fn join_random_symmetric<R: Rng + ?Sized>(
        &mut self,
        node: NodeId,
        online: &[NodeId],
        node_target: usize,
        peer_degree: usize,
        rng: &mut R,
    ) -> usize {
        let mut linked = 0;
        if self.degree(node) >= node_target {
            return 0;
        }
        let mut order: Vec<NodeId> = online
            .iter()
            .copied()
            .filter(|&n| n != node && !self.out(node).contains(n))
            .collect();
        order.shuffle(rng);
        for cand in order {
            if self.degree(node) >= node_target {
                break;
            }
            if self.degree(cand) < peer_degree && self.link_symmetric(node, cand).is_ok() {
                linked += 1;
            }
        }
        linked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn directed_edges_maintain_consistency() {
        let mut t = Topology::new(4, RelationKind::Asymmetric, 2, 2);
        t.add_edge(NodeId(0), NodeId(1)).unwrap();
        t.add_edge(NodeId(0), NodeId(2)).unwrap();
        assert!(t.out(NodeId(0)).contains(NodeId(1)));
        assert!(t.inc(NodeId(1)).contains(NodeId(0)));
        assert!(t.check_consistency().is_empty());
        assert!(t.remove_edge(NodeId(0), NodeId(1)));
        assert!(!t.inc(NodeId(1)).contains(NodeId(0)));
        assert!(t.check_consistency().is_empty());
    }

    #[test]
    fn add_edge_rolls_back_when_target_full() {
        let mut t = Topology::new(4, RelationKind::Asymmetric, 3, 1);
        t.add_edge(NodeId(1), NodeId(0)).unwrap();
        // node 0's incoming list is now full
        assert_eq!(t.add_edge(NodeId(2), NodeId(0)), Err(AddError::Full));
        assert!(!t.out(NodeId(2)).contains(NodeId(0)), "rollback failed");
        assert!(t.check_consistency().is_empty());
    }

    #[test]
    fn pure_asymmetric_incoming_never_fills() {
        let mut t = Topology::new(10, RelationKind::PureAsymmetric, 2, 0);
        for i in 1..10 {
            t.add_edge(NodeId(i), NodeId(0)).unwrap();
        }
        assert_eq!(t.inc(NodeId(0)).len(), 9);
        assert!(t.check_consistency().is_empty());
    }

    #[test]
    fn symmetric_link_is_mutual() {
        let mut t = Topology::symmetric(4, 4);
        t.link_symmetric(NodeId(0), NodeId(1)).unwrap();
        for (a, b) in [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))] {
            assert!(t.out(a).contains(b));
            assert!(t.inc(a).contains(b));
        }
        assert!(t.check_consistency().is_empty());
        assert!(t.unlink_symmetric(NodeId(1), NodeId(0)));
        assert_eq!(t.degree(NodeId(0)), 0);
        assert_eq!(t.degree(NodeId(1)), 0);
        assert!(t.check_consistency().is_empty());
    }

    #[test]
    fn symmetric_link_respects_capacity_atomically() {
        let mut t = Topology::symmetric(4, 1);
        t.link_symmetric(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(t.link_symmetric(NodeId(0), NodeId(2)), Err(AddError::Full));
        assert_eq!(t.link_symmetric(NodeId(2), NodeId(0)), Err(AddError::Full));
        assert_eq!(t.degree(NodeId(2)), 0);
        assert!(t.check_consistency().is_empty());
    }

    #[test]
    fn duplicate_symmetric_link_rejected() {
        let mut t = Topology::symmetric(4, 4);
        t.link_symmetric(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            t.link_symmetric(NodeId(0), NodeId(1)),
            Err(AddError::Duplicate)
        );
    }

    #[test]
    fn isolate_cleans_both_directions() {
        let mut t = Topology::symmetric(5, 4);
        t.link_symmetric(NodeId(0), NodeId(1)).unwrap();
        t.link_symmetric(NodeId(0), NodeId(2)).unwrap();
        t.link_symmetric(NodeId(3), NodeId(0)).unwrap();
        let former = t.isolate(NodeId(0));
        assert_eq!(former.len(), 3);
        assert_eq!(t.degree(NodeId(0)), 0);
        for n in [NodeId(1), NodeId(2), NodeId(3)] {
            assert!(!t.out(n).contains(NodeId(0)));
            assert!(!t.inc(n).contains(NodeId(0)));
        }
        assert!(t.check_consistency().is_empty());
    }

    #[test]
    fn detects_manufactured_inconsistency() {
        let mut t = Topology::new(3, RelationKind::Asymmetric, 2, 2);
        t.add_edge(NodeId(0), NodeId(1)).unwrap();
        // Sabotage: remove the incoming half directly.
        t.nodes[1].inc.remove(NodeId(0));
        let errs = t.check_consistency();
        assert_eq!(
            errs,
            vec![ConsistencyError {
                source: NodeId(0),
                target: NodeId(1)
            }]
        );
    }

    #[test]
    fn random_bootstrap_fills_most_slots() {
        let mut t = Topology::symmetric(100, 4);
        let members: Vec<NodeId> = (0..100).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        t.populate_random_symmetric(&members, 4, &mut rng);
        assert!(t.check_consistency().is_empty());
        let mean_degree: f64 = members.iter().map(|&n| t.degree(n)).sum::<usize>() as f64 / 100.0;
        assert!(mean_degree > 3.0, "mean degree {mean_degree}");
        assert!(members.iter().all(|&n| t.degree(n) <= 4));
    }

    #[test]
    fn join_links_up_to_degree() {
        let mut t = Topology::symmetric(50, 4);
        let online: Vec<NodeId> = (1..50).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        t.populate_random_symmetric(&online, 4, &mut rng);
        // Free one slot somewhere so the joiner can connect even if full.
        let linked = t.join_random_symmetric(NodeId(0), &online, 4, 4, &mut rng);
        assert!(linked <= 4);
        assert_eq!(t.degree(NodeId(0)), linked);
        assert!(t.check_consistency().is_empty());
    }

    #[test]
    fn join_respects_reduced_target() {
        let mut t = Topology::symmetric(10, 4);
        let online: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        // reserve 2 slots: only 2 links may form even though degree is 4
        let linked = t.join_random_symmetric(NodeId(0), &online, 2, 4, &mut rng);
        assert_eq!(linked, 2);
        assert_eq!(t.degree(NodeId(0)), 2);
        // target already met → no-op
        assert_eq!(
            t.join_random_symmetric(NodeId(0), &online, 2, 4, &mut rng),
            0
        );
    }

    #[test]
    fn all_to_all_is_complete_and_consistent() {
        let t = Topology::all_to_all(6);
        assert_eq!(t.relation(), RelationKind::AllToAll);
        assert!(t.check_consistency().is_empty());
        for a in 0..6u32 {
            assert_eq!(t.degree(NodeId(a)), 5);
            assert_eq!(t.inc(NodeId(a)).len(), 5);
            for b in 0..6u32 {
                if a != b {
                    assert!(t.out(NodeId(a)).contains(NodeId(b)));
                    assert!(t.inc(NodeId(a)).contains(NodeId(b)));
                }
            }
        }
        // one-hop flooding reaches everyone
        assert_eq!(crate::reachable_within(&t, NodeId(0), 1), 5);
    }

    #[test]
    fn all_to_all_degenerate_sizes() {
        let t = Topology::all_to_all(1);
        assert_eq!(t.degree(NodeId(0)), 0);
        assert!(t.check_consistency().is_empty());
        let t = Topology::all_to_all(2);
        assert!(t.out(NodeId(0)).contains(NodeId(1)));
        assert!(t.out(NodeId(1)).contains(NodeId(0)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut t = Topology::symmetric(2, 4);
        let _ = t.add_edge(NodeId(0), NodeId(0));
    }
}
