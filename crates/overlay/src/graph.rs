//! Bounded-hop graph traversals over the overlay.
//!
//! Used by the local-indices search policy (index everything within `r`
//! hops), by the evaluation ("each query can now reach up to N nodes") and
//! by tests that cross-check flooding coverage.

use crate::topology::Topology;
use ddr_sim::{FastHashMap, NodeId};
use std::collections::VecDeque;

/// BFS from `start` following *outgoing* edges, up to `max_hops`.
/// Returns `(node, hops)` for every reached node **excluding** `start`,
/// in discovery order.
pub fn bfs_within(topology: &Topology, start: NodeId, max_hops: usize) -> Vec<(NodeId, usize)> {
    let mut visited: FastHashMap<NodeId, usize> = ddr_sim::hash::fast_map();
    visited.insert(start, 0);
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    queue.push_back((start, 0));
    let mut out = Vec::new();
    while let Some((node, hops)) = queue.pop_front() {
        if hops == max_hops {
            continue;
        }
        for next in topology.out(node).iter() {
            if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(next) {
                e.insert(hops + 1);
                out.push((next, hops + 1));
                queue.push_back((next, hops + 1));
            }
        }
    }
    out
}

/// Number of distinct nodes reachable from `start` within `max_hops`
/// (excluding `start` itself).
pub fn reachable_within(topology: &Topology, start: NodeId, max_hops: usize) -> usize {
    bfs_within(topology, start, max_hops).len()
}

/// Upper bound on nodes explored by flooding with degree `d` and `h` hops:
/// `d + d(d-1) + d(d-1)^2 + …` — the series behind the paper's "only up to
/// 4 + 4·3 + … nodes are explored during each query" remarks.
pub fn flood_upper_bound(degree: usize, hops: usize) -> usize {
    if degree == 0 || hops == 0 {
        return 0;
    }
    let mut total = 0usize;
    let mut frontier = degree;
    for level in 0..hops {
        total = total.saturating_add(frontier);
        if level + 1 < hops {
            frontier = frontier.saturating_mul(degree.saturating_sub(1));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chain(n: usize) -> Topology {
        // 0 -> 1 -> 2 -> ... directed chain
        let mut t = Topology::new(n, crate::RelationKind::Asymmetric, 2, 2);
        for i in 0..n - 1 {
            t.add_edge(NodeId(i as u32), NodeId(i as u32 + 1)).unwrap();
        }
        t
    }

    #[test]
    fn bfs_respects_hop_limit() {
        let t = chain(10);
        let reached = bfs_within(&t, NodeId(0), 3);
        assert_eq!(
            reached,
            vec![(NodeId(1), 1), (NodeId(2), 2), (NodeId(3), 3)]
        );
        assert_eq!(reachable_within(&t, NodeId(0), 3), 3);
    }

    #[test]
    fn bfs_zero_hops_reaches_nothing() {
        let t = chain(3);
        assert!(bfs_within(&t, NodeId(0), 0).is_empty());
    }

    #[test]
    fn bfs_handles_cycles() {
        let mut t = Topology::new(3, crate::RelationKind::Asymmetric, 2, 2);
        t.add_edge(NodeId(0), NodeId(1)).unwrap();
        t.add_edge(NodeId(1), NodeId(2)).unwrap();
        t.add_edge(NodeId(2), NodeId(0)).unwrap();
        let reached = bfs_within(&t, NodeId(0), 10);
        assert_eq!(reached.len(), 2, "must terminate and not revisit");
    }

    #[test]
    fn bfs_on_symmetric_star() {
        let mut t = Topology::symmetric(5, 4);
        for i in 1..5 {
            t.link_symmetric(NodeId(0), NodeId(i)).unwrap();
        }
        assert_eq!(reachable_within(&t, NodeId(0), 1), 4);
        // leaves see the hub at 1 hop and the other leaves at 2
        assert_eq!(reachable_within(&t, NodeId(1), 2), 4);
    }

    #[test]
    fn flood_bound_matches_paper_arithmetic() {
        // degree 4: hop1 = 4, hop2 = 4 + 12 = 16, hop4 = 4+12+36+108 = 160
        assert_eq!(flood_upper_bound(4, 1), 4);
        assert_eq!(flood_upper_bound(4, 2), 16);
        assert_eq!(flood_upper_bound(4, 4), 160);
        assert_eq!(flood_upper_bound(0, 3), 0);
        assert_eq!(flood_upper_bound(4, 0), 0);
    }

    #[test]
    fn random_overlay_coverage_below_flood_bound() {
        let mut t = Topology::symmetric(500, 4);
        let members: Vec<NodeId> = (0..500).map(NodeId).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        t.populate_random_symmetric(&members, 4, &mut rng);
        for h in 1..=4 {
            let bound = flood_upper_bound(4, h);
            for &n in members.iter().take(20) {
                assert!(
                    reachable_within(&t, n, h) <= bound.max(4),
                    "coverage exceeded flood bound at h={h}"
                );
            }
        }
    }
}
