//! # ddr-repro — workspace façade
//!
//! Re-exports the public API of every crate in the reproduction of
//! *"A General Framework for Searching in Distributed Data Repositories"*
//! (Bakiras, Kalnis, Loukopoulos & Ng, IPDPS 2003), so examples and
//! downstream users can depend on one crate:
//!
//! ```
//! use ddr_repro::gnutella::{run_scenario, Mode, ScenarioConfig};
//!
//! let mut cfg = ScenarioConfig::scaled(Mode::Dynamic, 2, 20, 4);
//! cfg.seed = 1;
//! let report = run_scenario(cfg);
//! assert!(report.total_hits() >= 0.0);
//! ```
//!
//! Crate map (see DESIGN.md for the full inventory):
//!
//! * [`sim`] — deterministic discrete-event kernel
//! * [`net`] — bandwidth classes + latency model (paper §4.2)
//! * [`workload`] — Zipf catalogs, user libraries, churn, query streams
//! * [`overlay`] — neighbor lists, consistency invariant, topologies
//! * [`core`] — **the framework**: search / exploration / neighbor-update
//!   policies and benefit functions (paper §3, Algos 1–4), plus the
//!   shared framework runtime (`runtime`: membership set, per-node
//!   bundle, reconfiguration clock, observer sink)
//! * [`gnutella`] — case study 1: static vs dynamic Gnutella (paper §4)
//! * [`webcache`] — case study 2: cooperative proxy caching (asymmetric)
//! * [`peerolap`] — case study 3: distributed OLAP-result caching
//! * [`stats`] — series/histograms/tables used by the harness, and the
//!   shared `RuntimeMetrics` recorder all case studies embed, plus
//!   `MeasurementWindow`/`safe_ratio` (the windowed-report helpers)
//! * [`harness`] — the `Scenario` trait, the one prime → run → extract
//!   driver every case study runs through, the timed perf harness, and
//!   the deterministic parallel sweep engine (`run_many` / `Sweep`)
//! * [`telemetry`] — zero-cost-when-off observability: query-lifecycle
//!   span tracing (JSONL), kernel profiling, and the trace summarizer
//!   behind `ddr inspect`

pub use ddr_core as core;
pub use ddr_gnutella as gnutella;
pub use ddr_harness as harness;
pub use ddr_net as net;
pub use ddr_overlay as overlay;
pub use ddr_peerolap as peerolap;
pub use ddr_sim as sim;
pub use ddr_stats as stats;
pub use ddr_telemetry as telemetry;
pub use ddr_webcache as webcache;
pub use ddr_workload as workload;
